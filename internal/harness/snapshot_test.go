package harness

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/types"
	"github.com/bamboo-bft/bamboo/internal/workload"
)

// writeScenario drops a scenario body into a temp file.
func writeScenario(t *testing.T, body []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSnapshotCatchUpRecovery is the regression test for O(state)
// catch-up: with SnapshotInterval set, replicas snapshot every 8
// committed heights and compact their ledgers to the snapshot — so
// when a replica is partitioned away long enough, the history it is
// missing no longer exists as blocks ANYWHERE: every peer's ledger
// floor has moved past its head. Block-by-block catch-up (PR 3's
// path) is structurally impossible; the replica must fetch a
// manifest, cross-check it against f+1 peers, stream the state, and
// fast-forward only the suffix. The harness result must show exactly
// that: recovered, at least one snapshot install, and sync traffic
// bounded by the suffix rather than the gap.
//
// n is 5 for the same reason as TestDeepCatchUpRecovery: the 4-strong
// majority keeps committing throughout the partition, which is what
// drives its snapshot floor past the isolated replica.
func TestSnapshotCatchUpRecovery(t *testing.T) {
	cfg := testConfig(config.ProtocolHotStuff)
	cfg.N = 5
	cfg.ForestKeep = 8
	cfg.SnapshotInterval = 8
	exp := Experiment{
		Name:   "snapshot-catchup",
		Config: cfg,
		// The hot-key dial doubles as integration coverage for the
		// contention workload knob: half the traffic hammers 16 keys.
		Workload: workload.Spec{Kind: workload.KindKV, Keys: 256, WriteRatio: 0.5,
			HotKeys: 16, HotFraction: 0.5},
		Faults: FaultSchedule{
			PartitionAt(500*time.Millisecond, map[types.NodeID]int{2: 1}),
			HealAt(3 * time.Second),
		},
		Measure: MeasurePlan{
			Warmup:       200 * time.Millisecond,
			Window:       5 * time.Second,
			Concurrency:  16,
			PerOpTimeout: 400 * time.Millisecond,
			Bucket:       250 * time.Millisecond,
		},
	}
	res, err := Run(exp)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent || res.Violations != 0 {
		t.Fatalf("snapshot-catchup run inconsistent: consistent=%v violations=%d",
			res.Consistent, res.Violations)
	}
	if !res.Recovered {
		t.Fatalf("isolated replica never recovered: heights %v", res.Heights)
	}

	// The headline: recovery went through a snapshot install, not a
	// block stream of the gap.
	if res.Pipeline.SnapshotInstalls < 1 {
		t.Fatalf("no snapshot installed (pipeline %+v)", res.Pipeline)
	}
	if res.Pipeline.SnapshotsServed < 1 {
		t.Fatal("no peer served a manifest")
	}
	if len(res.SnapshotHeights) != cfg.N {
		t.Fatalf("snapshot heights for %d replicas, want %d", len(res.SnapshotHeights), cfg.N)
	}
	installed := res.SnapshotHeights[1] // node 2, the isolated replica
	if installed == 0 {
		t.Fatalf("isolated replica reports no snapshot: %v", res.SnapshotHeights)
	}
	if installed <= uint64(cfg.ForestKeep) {
		t.Fatalf("install height %d not past the keep window — gap was shallow", installed)
	}

	// Sync applied at most the suffix above the install point (with
	// slack for a renegotiated install when peers compacted onward
	// mid-transfer) — the O(state)-not-O(chain) bound.
	var maxHeight uint64
	for _, h := range res.Heights {
		if h > maxHeight {
			maxHeight = h
		}
	}
	bound := maxHeight - installed + uint64(2*cfg.SnapshotInterval)
	if res.Pipeline.SyncBlocksApplied > bound {
		t.Fatalf("sync streamed %d blocks, want at most the suffix %d (heights %v, installs at %v)",
			res.Pipeline.SyncBlocksApplied, bound, res.Heights, res.SnapshotHeights)
	}
	// Every majority replica captured snapshots of its own.
	for i, sh := range res.SnapshotHeights {
		if types.NodeID(i+1) == 2 {
			continue
		}
		if sh == 0 {
			t.Fatalf("replica %d captured no snapshot: %v", i+1, res.SnapshotHeights)
		}
	}
	// Fresh temp-dir ledgers: restart replay must not have fired.
	if res.Pipeline.ReplayedBlocks != 0 {
		t.Fatalf("ReplayedBlocks = %d on fresh ledgers", res.Pipeline.ReplayedBlocks)
	}
	// Liveness after the heal: commits at the tail of the timeline.
	if len(res.Series) < 8 {
		t.Fatalf("series too short: %d buckets", len(res.Series))
	}
	var tail float64
	for _, v := range res.Series[len(res.Series)-3:] {
		tail += v
	}
	if tail == 0 {
		t.Fatalf("no commits after heal: series %v", res.Series)
	}
}

// TestCommittedSnapshotScenarioStaysValid guards the repository's
// snapshot-catchup scenario — the input of the snapshot-smoke CI
// gate: if a refactor breaks its schema or waters down its fault
// timeline, this fails before CI burns a full run on it.
func TestCommittedSnapshotScenarioStaysValid(t *testing.T) {
	exp, err := LoadExperiment(filepath.Join("..", "..", "examples", "scenarios", "snapshot-catchup.json"))
	if err != nil {
		t.Fatal(err)
	}
	if exp.Name != "snapshot-catchup" {
		t.Fatalf("unexpected scenario name %q", exp.Name)
	}
	if exp.Config.SnapshotInterval == 0 {
		t.Fatal("committed scenario lost its snapshot interval")
	}
	if exp.Workload.HotKeys == 0 || exp.Workload.HotFraction == 0 {
		t.Fatal("committed scenario lost its hot-key dial")
	}
	// The CI gate's value hangs on a deep partition (compacted
	// history) plus a crash/restart leg; keep the file honest.
	kinds := map[string]bool{}
	for _, ev := range exp.Faults {
		kinds[ev.Kind] = true
	}
	for _, want := range []string{FaultPartition, FaultHeal, FaultCrash, FaultRestart} {
		if !kinds[want] {
			t.Fatalf("committed scenario lost its %s event", want)
		}
	}
}

// TestScenarioDeclaresSnapshotKnobs: the new configuration and
// workload knobs ride through a declared scenario file (strict
// unknown-field rejection still on), and a typo'd knob still fails
// loudly.
func TestScenarioDeclaresSnapshotKnobs(t *testing.T) {
	good := []byte(`{
		"name": "snap",
		"config": {"n": 4, "protocol": "hotstuff", "forestKeep": 8, "snapshotInterval": 16},
		"workload": {"kind": "kv", "hotKeys": 8, "hotFraction": 0.9},
		"measure": {"window": 1000000}
	}`)
	path := writeScenario(t, good)
	exp, err := LoadExperiment(path)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Config.SnapshotInterval != 16 || exp.Config.ForestKeep != 8 {
		t.Fatalf("snapshot knobs lost in transit: %+v", exp.Config)
	}
	if exp.Workload.HotKeys != 8 || exp.Workload.HotFraction != 0.9 {
		t.Fatalf("hot-key knobs lost in transit: %+v", exp.Workload)
	}

	typod := []byte(`{
		"config": {"n": 4, "protocol": "hotstuff", "snapshotIntervall": 16},
		"measure": {"window": 1000000}
	}`)
	if _, err := LoadExperiment(writeScenario(t, typod)); err == nil {
		t.Fatal("misspelled snapshot knob accepted")
	}

	// An interval below the keep window must fail validation, not
	// run with a broken serving configuration.
	tooSmall := []byte(`{
		"config": {"n": 4, "protocol": "hotstuff", "snapshotInterval": 8},
		"measure": {"window": 1000000}
	}`)
	if _, err := LoadExperiment(writeScenario(t, tooSmall)); err == nil {
		t.Fatal("snapshot interval below the keep window accepted")
	}
}

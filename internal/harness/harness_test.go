package harness

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/types"
	"github.com/bamboo-bft/bamboo/internal/workload"
)

// testConfig is the fast substrate shared by the harness tests.
func testConfig(proto string) config.Config {
	cfg := config.Default()
	cfg.Protocol = proto
	cfg.ApplyProtocolDefaults()
	cfg.BlockSize = 20
	cfg.MemSize = 10000
	cfg.Timeout = 150 * time.Millisecond
	cfg.MaxNetworkDelay = 10 * time.Millisecond
	cfg.CryptoScheme = "hmac"
	return cfg
}

// TestRunClosedLoop is the harness happy path: one closed-loop point
// with throughput, latency, and window network counters.
func TestRunClosedLoop(t *testing.T) {
	res, err := Run(Experiment{
		Name:   "smoke",
		Config: testConfig(config.ProtocolHotStuff),
		Measure: MeasurePlan{
			Warmup:      200 * time.Millisecond,
			Window:      500 * time.Millisecond,
			Concurrency: 16,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("points = %d, want 1", len(res.Points))
	}
	p := res.Points[0]
	if p.Throughput <= 0 || p.Mean <= 0 {
		t.Fatalf("empty point: %+v", p)
	}
	if p.NetMsgs == 0 || p.Blocks == 0 {
		t.Fatalf("missing window counters: %+v", p)
	}
	if !res.Consistent || res.Violations != 0 {
		t.Fatalf("bad verdict: consistent=%v violations=%d", res.Consistent, res.Violations)
	}
	if res.Network.Msgs < p.NetMsgs {
		t.Fatalf("run total %d below window %d", res.Network.Msgs, p.NetMsgs)
	}
}

// TestRunLadder runs a levels ladder and checks one point per level.
func TestRunLadder(t *testing.T) {
	res, err := Run(Experiment{
		Config: testConfig(config.ProtocolHotStuff),
		Measure: MeasurePlan{
			Warmup: 150 * time.Millisecond,
			Window: 300 * time.Millisecond,
			Levels: []int{2, 8},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	if res.Points[0].Offered != 2 || res.Points[1].Offered != 8 {
		t.Fatalf("offered loads %v, %v", res.Points[0].Offered, res.Points[1].Offered)
	}
}

// TestPartitionHealLiveness is the acceptance scenario: a declared
// partition splits the cluster into two quorum-less halves (total
// stall, so no replica drifts past the forest keep window), a
// declared heal restores connectivity and liveness; the run must end
// consistent and the result must survive a JSON round trip.
func TestPartitionHealLiveness(t *testing.T) {
	cfg := testConfig(config.ProtocolHotStuff)
	exp := Experiment{
		Name:   "partition-heal",
		Config: cfg,
		Workload: workload.Spec{
			Kind: workload.KindKV, Keys: 256, WriteRatio: 0.5,
		},
		Faults: FaultSchedule{
			PartitionAt(400*time.Millisecond, map[types.NodeID]int{3: 1, 4: 1}),
			HealAt(1100 * time.Millisecond),
		},
		Measure: MeasurePlan{
			Warmup:      100 * time.Millisecond,
			Window:      2500 * time.Millisecond,
			Concurrency: 8,
			// Short per-op timeout so workers stuck during the stall
			// resubmit well before the window ends.
			PerOpTimeout: 400 * time.Millisecond,
			Bucket:       250 * time.Millisecond,
		},
	}
	res, err := Run(exp)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent || res.Violations != 0 {
		t.Fatalf("partition-heal run inconsistent: %+v", res)
	}
	if res.Points[0].Throughput <= 0 {
		t.Fatal("no committed throughput across the timeline")
	}
	if len(res.Series) < 8 {
		t.Fatalf("series too short: %d buckets", len(res.Series))
	}
	// The 2/2 split leaves no quorum anywhere: the bucket fully
	// inside the partition window (750–1000ms) must be empty.
	if res.Series[3] != 0 {
		t.Fatalf("commits during quorum-less partition: series %v", res.Series)
	}
	// Liveness must return after the heal: the tail of the series
	// (well past the heal at 1.1s of the timeline) carries commits.
	var tail float64
	for _, v := range res.Series[len(res.Series)-3:] {
		tail += v
	}
	if tail == 0 {
		t.Fatalf("no commits after heal: series %v", res.Series)
	}

	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*res, back) {
		t.Fatalf("result did not round-trip through JSON:\n got %+v\nwant %+v", back, *res)
	}
}

// TestCrashRestartRoundTrip crashes a follower mid-run and restarts
// it; the cluster must stay live throughout and end consistent. The
// crashed node is NOT the observer (the highest-ID replica the
// harness measures at), so the throughput assertion covers the whole
// timeline, not just the pre-crash slice.
func TestCrashRestartRoundTrip(t *testing.T) {
	cfg := testConfig(config.ProtocolHotStuff)
	cfg.N = 5
	res, err := Run(Experiment{
		Config: cfg,
		Faults: FaultSchedule{
			CrashAt(300*time.Millisecond, 2),
			RestartAt(900*time.Millisecond, 2),
		},
		Measure: MeasurePlan{
			Warmup:       100 * time.Millisecond,
			Window:       2 * time.Second,
			Concurrency:  8,
			PerOpTimeout: time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("crash/restart run inconsistent")
	}
	if res.Points[0].Throughput <= 0 {
		t.Fatal("no throughput through crash/restart timeline")
	}
}

// TestOpenLoopRate drives the harness's open-loop path.
func TestOpenLoopRate(t *testing.T) {
	res, err := Run(Experiment{
		Config: testConfig(config.ProtocolHotStuff),
		Measure: MeasurePlan{
			Warmup: 300 * time.Millisecond,
			Window: time.Second,
			Rate:   2000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Points[0]
	if p.Offered != 2000 {
		t.Fatalf("offered = %v, want 2000", p.Offered)
	}
	if p.Throughput <= 0 {
		t.Fatal("no open-loop throughput")
	}
	// The tight offered-vs-committed band only holds at native speed;
	// the race detector's slowdown can push a slow host below it.
	if !raceEnabled && (p.Throughput < 0.6*2000 || p.Throughput > 1.4*2000) {
		t.Fatalf("open-loop throughput %.0f far from offered 2000", p.Throughput)
	}
}

// TestValidateRejects covers the declarative surface's input checks.
func TestValidateRejects(t *testing.T) {
	base := func() Experiment {
		return Experiment{Config: testConfig(config.ProtocolHotStuff)}
	}
	cases := []struct {
		name string
		mut  func(*Experiment)
	}{
		{"unknown workload kind", func(e *Experiment) { e.Workload.Kind = "mystery" }},
		{"bad write ratio", func(e *Experiment) { e.Workload = workload.Spec{Kind: workload.KindKV, WriteRatio: 2} }},
		{"unknown fault kind", func(e *Experiment) { e.Faults = FaultSchedule{{Kind: "meteor"}} }},
		{"negative fault offset", func(e *Experiment) { e.Faults = FaultSchedule{{At: -time.Second, Kind: FaultHeal}} }},
		{"fluctuate without duration", func(e *Experiment) { e.Faults = FaultSchedule{{Kind: FaultFluctuate}} }},
		{"fluctuate min above max", func(e *Experiment) {
			e.Faults = FaultSchedule{FluctuateAt(time.Second, time.Second, 100*time.Millisecond, 10*time.Millisecond)}
		}},
		{"crash without replicas", func(e *Experiment) { e.Faults = FaultSchedule{CrashAt(time.Second)} }},
		{"crash out of range", func(e *Experiment) { e.Faults = FaultSchedule{CrashAt(time.Second, 99)} }},
		{"delay without replicas", func(e *Experiment) { e.Faults = FaultSchedule{SetDelayAt(time.Second, time.Millisecond, 0)} }},
		{"partition without groups", func(e *Experiment) { e.Faults = FaultSchedule{PartitionAt(time.Second, nil)} }},
		{"partition out of range", func(e *Experiment) {
			e.Faults = FaultSchedule{PartitionAt(time.Second, map[types.NodeID]int{9: 1})}
		}},
		{"drop rate out of range", func(e *Experiment) { e.Faults = FaultSchedule{{Kind: FaultDrop, Rate: 1.5}} }},
		{"unknown election", func(e *Experiment) { e.Election = "sortition" }},
		{"non-positive level", func(e *Experiment) { e.Measure.Levels = []int{4, 0} }},
		{"non-positive rate", func(e *Experiment) { e.Measure.Rates = []float64{100, -5} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			exp := base()
			tc.mut(&exp)
			if _, err := Run(exp); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

package harness

import (
	"fmt"
	"sort"
	"time"

	"github.com/bamboo-bft/bamboo/internal/network"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// Fault event kinds. Each compiles onto one network.Conditions call
// when its offset elapses.
const (
	FaultPartition = "partition"
	FaultHeal      = "heal"
	FaultCrash     = "crash"
	FaultRestart   = "restart"
	FaultFluctuate = "fluctuate"
	FaultDelay     = "delay"
	FaultDrop      = "drop"
)

// FaultEvent is one timed entry of a fault schedule: at offset At
// from experiment start, the named condition change is applied. Build
// events with the *At constructors; the fields are exported so a
// schedule survives a JSON round trip.
type FaultEvent struct {
	// At is the offset from experiment (cluster) start.
	At time.Duration `json:"at"`
	// Kind names the condition change (Fault* constants).
	Kind string `json:"kind"`
	// Groups maps nodes to partition groups (partition events).
	Groups map[types.NodeID]int `json:"groups,omitempty"`
	// Nodes lists the affected replicas (crash/restart/delay events).
	Nodes []types.NodeID `json:"nodes,omitempty"`
	// Dur bounds a fluctuation window.
	Dur time.Duration `json:"dur,omitempty"`
	// Min and Max bound the uniform fluctuation delay.
	Min time.Duration `json:"min,omitempty"`
	Max time.Duration `json:"max,omitempty"`
	// Mean and Std shape a per-node extra delay (delay events).
	Mean time.Duration `json:"mean,omitempty"`
	Std  time.Duration `json:"std,omitempty"`
	// Rate is the message drop probability (drop events).
	Rate float64 `json:"rate,omitempty"`
}

// PartitionAt splits the cluster into the given groups at offset at;
// messages cross group boundaries only between nodes sharing a group
// (unlisted nodes are group 0).
func PartitionAt(at time.Duration, groups map[types.NodeID]int) FaultEvent {
	return FaultEvent{At: at, Kind: FaultPartition, Groups: groups}
}

// HealAt removes every partition at offset at.
func HealAt(at time.Duration) FaultEvent {
	return FaultEvent{At: at, Kind: FaultHeal}
}

// CrashAt silences the named replicas at offset at: they neither send
// nor receive until restarted.
func CrashAt(at time.Duration, nodes ...types.NodeID) FaultEvent {
	return FaultEvent{At: at, Kind: FaultCrash, Nodes: nodes}
}

// RestartAt undoes a crash of the named replicas at offset at.
func RestartAt(at time.Duration, nodes ...types.NodeID) FaultEvent {
	return FaultEvent{At: at, Kind: FaultRestart, Nodes: nodes}
}

// FluctuateAt replaces the base link delay with Uniform(min, max) for
// dur starting at offset at — the responsiveness experiment's network
// fluctuation.
func FluctuateAt(at, dur, min, max time.Duration) FaultEvent {
	return FaultEvent{At: at, Kind: FaultFluctuate, Dur: dur, Min: min, Max: max}
}

// SetDelayAt adds Normal(mean, std) delay to every message the named
// replicas send, from offset at — the paper's "slow" run-time
// command. Zero mean and std clears a previous delay.
func SetDelayAt(at time.Duration, mean, std time.Duration, nodes ...types.NodeID) FaultEvent {
	return FaultEvent{At: at, Kind: FaultDelay, Mean: mean, Std: std, Nodes: nodes}
}

// SetDropRateAt makes every message independently lost with
// probability rate from offset at.
func SetDropRateAt(at time.Duration, rate float64) FaultEvent {
	return FaultEvent{At: at, Kind: FaultDrop, Rate: rate}
}

// FaultSchedule is an ordered set of timed fault events. Events fire
// in At order (declaration order breaks ties).
type FaultSchedule []FaultEvent

// Validate reports the first malformed event.
func (s FaultSchedule) Validate() error {
	for i, ev := range s {
		switch ev.Kind {
		case FaultPartition, FaultHeal, FaultCrash, FaultRestart,
			FaultFluctuate, FaultDelay, FaultDrop:
		default:
			return fmt.Errorf("harness: fault event %d has unknown kind %q", i, ev.Kind)
		}
		if ev.At < 0 {
			return fmt.Errorf("harness: fault event %d (%s) has negative offset", i, ev.Kind)
		}
		if ev.Kind == FaultFluctuate {
			if ev.Dur <= 0 {
				return fmt.Errorf("harness: fluctuate event %d needs a positive duration", i)
			}
			if ev.Min > ev.Max {
				return fmt.Errorf("harness: fluctuate event %d has min %v above max %v", i, ev.Min, ev.Max)
			}
		}
		switch ev.Kind {
		case FaultCrash, FaultRestart, FaultDelay:
			// An event that names no replicas would fire as a silent
			// no-op — a typo'd scenario must not run "green".
			if len(ev.Nodes) == 0 {
				return fmt.Errorf("harness: %s event %d names no replicas", ev.Kind, i)
			}
		case FaultPartition:
			// Empty groups put every node back in group 0, i.e. a
			// fully connected network — the same silent no-op.
			if len(ev.Groups) == 0 {
				return fmt.Errorf("harness: partition event %d declares no groups", i)
			}
		}
		if ev.Rate < 0 || ev.Rate > 1 {
			return fmt.Errorf("harness: drop event %d rate %v outside [0,1]", i, ev.Rate)
		}
	}
	return nil
}

// FaultTarget is the deployment surface a schedule fires against.
// Partition, delay, drop, and fluctuation events compile into one
// declarative network.ConditionsSpec each and land on ApplyConditions
// — the in-process cluster applies the spec to its shared condition
// model, a fleet fans it out to every server's admin endpoint. Crash
// and restart go through their own methods so a backend can give them
// transport- or process-level consequences: the TCP cluster tears down
// the crashed node's sockets, the fleet SIGKILLs and re-execs the
// child process. cluster.Cluster and fleet.Fleet implement it.
type FaultTarget interface {
	ApplyConditions(network.ConditionsSpec)
	Crash(types.NodeID)
	Restart(types.NodeID)
}

// conditionsTarget adapts a bare condition model — crash and restart
// have no transport to touch. Tests (and any condition-only caller)
// use it.
type conditionsTarget struct{ cond *network.Conditions }

func (t conditionsTarget) ApplyConditions(spec network.ConditionsSpec) {
	spec.Apply(t.cond, time.Now())
}
func (t conditionsTarget) Crash(id types.NodeID)   { t.cond.Crash(id) }
func (t conditionsTarget) Restart(id types.NodeID) { t.cond.Restart(id) }

// ConditionsSpec compiles the event into the declarative condition
// change it means, or a zero spec for crash/restart events (which fire
// through the target's own methods).
func (ev FaultEvent) ConditionsSpec() network.ConditionsSpec {
	switch ev.Kind {
	case FaultPartition:
		return network.ConditionsSpec{Partition: ev.Groups}
	case FaultHeal:
		return network.ConditionsSpec{Heal: true}
	case FaultFluctuate:
		return network.ConditionsSpec{Fluctuate: &network.FluctuateSpec{
			Dur: ev.Dur, Min: ev.Min, Max: ev.Max,
		}}
	case FaultDelay:
		spec := network.ConditionsSpec{}
		for _, id := range ev.Nodes {
			spec.Delays = append(spec.Delays, network.NodeDelaySpec{
				Node: id, Mean: ev.Mean, Std: ev.Std,
			})
		}
		return spec
	case FaultDrop:
		rate := ev.Rate
		return network.ConditionsSpec{DropRate: &rate}
	}
	return network.ConditionsSpec{}
}

// apply compiles one event onto the target at fire time.
func (ev FaultEvent) apply(target FaultTarget) {
	switch ev.Kind {
	case FaultCrash:
		for _, id := range ev.Nodes {
			target.Crash(id)
		}
	case FaultRestart:
		for _, id := range ev.Nodes {
			target.Restart(id)
		}
	default:
		target.ApplyConditions(ev.ConditionsSpec())
	}
}

// run fires the schedule against the target from start, in At order,
// until done or stop closes. onFire, when non-nil, observes each
// event as it is applied (tests hook it).
func (s FaultSchedule) run(target FaultTarget, start time.Time,
	stop <-chan struct{}, onFire func(FaultEvent)) {

	ordered := make(FaultSchedule, len(s))
	copy(ordered, s)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].At < ordered[j].At })
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for _, ev := range ordered {
		wait := time.Until(start.Add(ev.At))
		if wait > 0 {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(wait)
			select {
			case <-stop:
				return
			case <-timer.C:
			}
		}
		ev.apply(target)
		if onFire != nil {
			onFire(ev)
		}
	}
}

package harness

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/bamboo-bft/bamboo/internal/config"
)

// LoadExperiment reads one declared scenario from a JSON file — the
// `bamboo-bench -run scenario.json` path, where a scenario is a
// committed artifact rather than a Go literal. The configuration
// section starts from config.Default() (like a bamboo-server config
// file), so a scenario only states what it changes; unknown fields are
// rejected, because a typo'd knob silently falling back to a default
// would run "green" while measuring the wrong thing. Both the
// experiment and its configuration are validated before anything runs.
func LoadExperiment(path string) (Experiment, error) {
	exp := Experiment{Config: config.Default()}
	data, err := os.ReadFile(path)
	if err != nil {
		return exp, fmt.Errorf("harness: scenario: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&exp); err != nil {
		return exp, decodeError(path, data, err)
	}
	if dec.More() {
		return exp, fmt.Errorf("harness: scenario %s: trailing data after the experiment object", path)
	}
	// Mirror config.Load: an address map fixes the replica count.
	if len(exp.Config.Addrs) > 0 {
		exp.Config.N = len(exp.Config.Addrs)
	}
	if exp.Name == "" {
		exp.Name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	if err := exp.Config.Validate(); err != nil {
		return exp, fmt.Errorf("harness: scenario %s: %w", path, err)
	}
	if err := exp.Validate(); err != nil {
		return exp, fmt.Errorf("harness: scenario %s: %w", path, err)
	}
	return exp, nil
}

// decodeError rewrites JSON decode failures so the message names the
// offending field, or the line and column of the syntax error — a
// typo'd scenario should point at itself, not at decoder internals.
func decodeError(path string, data []byte, err error) error {
	var typeErr *json.UnmarshalTypeError
	if errors.As(err, &typeErr) {
		field := typeErr.Field
		if field == "" {
			field = "(top level)"
		}
		line, col := lineCol(data, typeErr.Offset)
		return fmt.Errorf("harness: scenario %s:%d:%d: field %q wants a %s, not JSON %s",
			path, line, col, field, typeErr.Type, typeErr.Value)
	}
	var synErr *json.SyntaxError
	if errors.As(err, &synErr) {
		line, col := lineCol(data, synErr.Offset)
		return fmt.Errorf("harness: scenario %s:%d:%d: %w", path, line, col, err)
	}
	if msg := err.Error(); strings.HasPrefix(msg, "json: unknown field ") {
		field := strings.TrimPrefix(msg, "json: unknown field ")
		return fmt.Errorf("harness: scenario %s: unknown field %s (every accepted field is documented in docs/scenarios.md)",
			path, field)
	}
	return fmt.Errorf("harness: scenario %s: %w", path, err)
}

// lineCol converts a byte offset into 1-based line and column numbers.
func lineCol(data []byte, offset int64) (line, col int) {
	if offset > int64(len(data)) {
		offset = int64(len(data))
	}
	line, col = 1, 1
	for _, b := range data[:offset] {
		if b == '\n' {
			line++
			col = 1
			continue
		}
		col++
	}
	return line, col
}

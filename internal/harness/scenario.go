package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/bamboo-bft/bamboo/internal/config"
)

// LoadExperiment reads one declared scenario from a JSON file — the
// `bamboo-bench -run scenario.json` path, where a scenario is a
// committed artifact rather than a Go literal. The configuration
// section starts from config.Default() (like a bamboo-server config
// file), so a scenario only states what it changes; unknown fields are
// rejected, because a typo'd knob silently falling back to a default
// would run "green" while measuring the wrong thing. Both the
// experiment and its configuration are validated before anything runs.
func LoadExperiment(path string) (Experiment, error) {
	exp := Experiment{Config: config.Default()}
	data, err := os.ReadFile(path)
	if err != nil {
		return exp, fmt.Errorf("harness: scenario: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&exp); err != nil {
		return exp, fmt.Errorf("harness: scenario %s: %w", path, err)
	}
	if dec.More() {
		return exp, fmt.Errorf("harness: scenario %s: trailing data after the experiment object", path)
	}
	// Mirror config.Load: an address map fixes the replica count.
	if len(exp.Config.Addrs) > 0 {
		exp.Config.N = len(exp.Config.Addrs)
	}
	if exp.Name == "" {
		exp.Name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	if err := exp.Config.Validate(); err != nil {
		return exp, fmt.Errorf("harness: scenario %s: %w", path, err)
	}
	if err := exp.Validate(); err != nil {
		return exp, fmt.Errorf("harness: scenario %s: %w", path, err)
	}
	return exp, nil
}

package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/fleet"
	"github.com/bamboo-bft/bamboo/internal/metrics"
	"github.com/bamboo-bft/bamboo/internal/network"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// runFleetStep executes one load level against a fresh fleet of real
// bamboo-server processes — the same declared scenario as the
// in-process backends, with the process boundary made real: load goes
// in through each replica's HTTP API, faults cross as SIGKILL /
// re-exec / admin-endpoint pushes, and the Result is merged from every
// server's node-local slice.
//
// The fleet is closed-loop only, and the load-shaping extras that
// require in-process hooks (open-loop rates, fanout transaction
// mirroring, commit-series buckets, hashed election) are rejected
// loudly rather than silently degraded.
func runFleetStep(exp Experiment, concurrency int, rate float64, res *Result) (Point, error) {
	var p Point
	cfg := exp.Config
	switch {
	case rate > 0:
		return p, fmt.Errorf("harness: fleet backend is closed-loop only (open-loop minting lives in the in-process client)")
	case exp.Measure.Fanout:
		return p, fmt.Errorf("harness: fleet backend cannot fan out transactions (each server mints its own IDs)")
	case exp.Measure.Bucket > 0:
		return p, fmt.Errorf("harness: fleet backend has no commit-series hook")
	case exp.Election == ElectionHashed:
		return p, fmt.Errorf("harness: fleet backend runs the server's configured election only")
	}
	gen, err := exp.Workload.New(cfg.PayloadSize, cfg.Seed)
	if err != nil {
		return p, err
	}

	f, err := fleet.New(cfg, fleet.Options{
		Dir:           exp.LedgerDir,
		DisableLedger: exp.DisableLedger,
	})
	if err != nil {
		return p, err
	}
	stopped := false
	defer func() {
		if !stopped {
			_ = f.Stop()
		}
	}()

	// The epoch — the zero point of fault offsets — is "every replica
	// ready". The in-process backends anchor just before assembly;
	// assembly there is microseconds, while spawning real processes is
	// not, so anchoring after readiness is what keeps a scenario's
	// offsets meaning the same thing on every backend.
	epoch := time.Now()
	stop := make(chan struct{})
	faultsDone := make(chan struct{})
	kills := &preKillRecorder{f: f}
	if len(exp.Faults) > 0 {
		go func() {
			defer close(faultsDone)
			exp.Faults.run(kills, epoch, stop, nil)
		}()
	} else {
		close(faultsDone)
	}

	perOp := exp.Measure.PerOpTimeout
	if perOp <= 0 {
		perOp = 5 * time.Second
	}
	load := startFleetLoad(f, gen, cfg.N, concurrency, perOp, cfg.Seed)
	p.Offered = float64(concurrency)

	if exp.Measure.Warmup > 0 {
		time.Sleep(exp.Measure.Warmup)
	}
	load.lat.Reset()
	observer := types.NodeID(cfg.N)
	startRes, err := f.ReplicaResult(observer)
	if err != nil {
		return p, err
	}
	window := exp.Measure.Window
	if window <= 0 {
		window = cfg.Runtime
	}
	begin := time.Now()
	time.Sleep(window)
	elapsed := time.Since(begin)
	endRes, err := f.ReplicaResult(observer)
	if err != nil {
		return p, err
	}

	close(stop)
	<-faultsDone
	load.stop()

	p.Throughput = float64(endRes.Chain.TxCommitted-startRes.Chain.TxCommitted) / elapsed.Seconds()
	p.Blocks = endRes.Chain.BlocksCommitted - startRes.Chain.BlocksCommitted
	lat := load.lat.Snapshot()
	p.Mean, p.P50, p.P99 = lat.Mean, lat.P50, lat.P99
	// Observer-endpoint traffic over the window (deployment-wide sums
	// land in Result.Network below).
	p.NetMsgs = endRes.Transport.Msgs - startRes.Transport.Msgs
	p.NetBytes = endRes.Transport.Bytes - startRes.Transport.Bytes

	// Merge every server's node-local slice into the deployment-wide
	// result: counters summed, ratio metrics averaged over honest
	// replicas, heights into the shared recovery verdict. A replica
	// that is down at the end contributes a zero slice — its height 0
	// fails the recovery verdict, which is the correct reading of "the
	// scenario ended with a replica dead". Transport sums count each
	// replica's CURRENT incarnation; traffic of pre-restart
	// incarnations died with their processes.
	var chain metrics.ChainStats
	var pipeline metrics.PipelineStats
	var net NetworkStats
	heights := make([]uint64, cfg.N)
	snapHeights := make([]uint64, cfg.N)
	reached := make([]bool, cfg.N)
	var violations uint64
	honest := 0
	for i := 1; i <= cfg.N; i++ {
		id := types.NodeID(i)
		rr, err := f.ReplicaResult(id)
		if err != nil {
			continue
		}
		reached[i-1] = true
		heights[i-1] = rr.CommittedHeight
		snapHeights[i-1] = rr.SnapshotHeight
		violations += rr.Violations
		net.Msgs += rr.Transport.Msgs
		net.Bytes += rr.Transport.Bytes
		net.Dropped += rr.Transport.Dropped
		net.Dials += rr.Transport.Dials
		net.Redials += rr.Transport.Redials
		net.Accepted += rr.Transport.Accepted
		if !cfg.IsByzantine(id) {
			chain.Accumulate(rr.Chain)
			pipeline.AddCounters(rr.Pipeline)
			honest++
		}
	}
	chain.AverageRatios(honest)
	p.CGR, p.BI = chain.CGR, chain.BI
	p.Pipeline = pipeline

	res.Chain = chain
	res.Pipeline = pipeline
	res.Network = net
	res.Heights = heights
	res.Recovered = recoveredFromHeights(heights, cfg)
	if cfg.SnapshotInterval > 0 {
		res.SnapshotHeights = snapHeights
	}
	res.Violations += violations
	pids := f.Pids()
	res.Pids = make([]int, cfg.N)
	for i := 1; i <= cfg.N; i++ {
		res.Pids[i-1] = pids[types.NodeID(i)]
	}
	// The fault goroutine has joined (<-faultsDone above), so the
	// recorder's maps are quiescent here.
	if len(kills.committed) > 0 {
		res.PreKillHeights = make([]uint64, cfg.N)
		res.PreKillLedgerHeights = make([]uint64, cfg.N)
		for id, h := range kills.committed {
			res.PreKillHeights[id-1] = h
		}
		for id, h := range kills.ledger {
			res.PreKillLedgerHeights[id-1] = h
		}
	}

	if err := fleetConsistencyCheck(f, cfg, heights, reached); err != nil {
		return p, err
	}
	stopped = true
	if err := f.Stop(); err != nil {
		return p, fmt.Errorf("harness: fleet teardown: %w", err)
	}
	if res.Violations != 0 {
		return p, fmt.Errorf("harness: %d safety violations", res.Violations)
	}
	return p, nil
}

// preKillRecorder is the fault target the fleet step really runs the
// schedule against: it interposes on Crash to snapshot the victim's
// committed and on-disk ledger heights over HTTP in the instant before
// the SIGKILL lands, and passes everything else straight through. The
// two heights are the anchors of the exact-height recovery verdict —
// the ledger height is monotone while the process lives, so whatever
// is recorded here lower-bounds what the next incarnation's bootstrap
// replay must re-commit. The schedule runs in a single goroutine, so
// the maps need no locking; readers wait for that goroutine to join.
type preKillRecorder struct {
	f         *fleet.Fleet
	committed map[types.NodeID]uint64
	ledger    map[types.NodeID]uint64
}

func (r *preKillRecorder) ApplyConditions(spec network.ConditionsSpec) {
	r.f.ApplyConditions(spec)
}

func (r *preKillRecorder) Restart(id types.NodeID) { r.f.Restart(id) }

func (r *preKillRecorder) Crash(id types.NodeID) {
	if rr, err := r.f.ReplicaResult(id); err == nil {
		if r.committed == nil {
			r.committed = make(map[types.NodeID]uint64)
			r.ledger = make(map[types.NodeID]uint64)
		}
		// A replica killed twice keeps its highest anchors: recovery
		// must reach the furthest point any incarnation got to.
		if rr.CommittedHeight > r.committed[id] {
			r.committed[id] = rr.CommittedHeight
		}
		if rr.LedgerHeight > r.ledger[id] {
			r.ledger[id] = rr.LedgerHeight
		}
	}
	r.f.Crash(id)
}

// fleetConsistencyCheck is the cluster's cross-replica consistency
// check carried over HTTP: every pair of reachable honest replicas
// must agree on the committed block hash at their common height,
// probed at several depths so later commits cannot mask divergence.
func fleetConsistencyCheck(f *fleet.Fleet, cfg config.Config, heights []uint64, reached []bool) error {
	min := uint64(0)
	for i, h := range heights {
		if !reached[i] || cfg.IsByzantine(types.NodeID(i+1)) {
			continue
		}
		if min == 0 || h < min {
			min = h
		}
	}
	if min == 0 {
		return nil
	}
	for _, h := range []uint64{min, min / 2, 1} {
		if h == 0 {
			continue
		}
		var want string
		var wantFrom types.NodeID
		for i := 0; i < cfg.N; i++ {
			id := types.NodeID(i + 1)
			if !reached[i] || cfg.IsByzantine(id) {
				continue
			}
			got, ok, err := f.HashAt(id, h)
			if err != nil || !ok {
				continue // down, or compacted beyond window on this replica
			}
			if want == "" {
				want, wantFrom = got, id
				continue
			}
			if got != want {
				return fmt.Errorf("harness: replicas %s and %s disagree at height %d: %s vs %s",
					wantFrom, id, h, want, got)
			}
		}
	}
	return nil
}

// fleetLoad is the closed-loop load generator of the fleet backend:
// the in-process client's loop rebuilt over HTTP. Each worker submits
// to a seeded-random replica and waits for the commit response;
// latencies are recorded client-side, exactly like the in-process
// closed loop. Submissions to a crashed replica fail fast and count
// for nothing — the same transactions a real client would lose.
type fleetLoad struct {
	lat    *metrics.Latency
	stopCh chan struct{}
	wg     sync.WaitGroup
}

func startFleetLoad(f *fleet.Fleet, gen interface{ Next() []byte },
	n, concurrency int, perOp time.Duration, seed int64) *fleetLoad {

	l := &fleetLoad{
		lat:    &metrics.Latency{},
		stopCh: make(chan struct{}),
	}
	client := &http.Client{Timeout: perOp}
	for w := 0; w < concurrency; w++ {
		l.wg.Add(1)
		rng := rand.New(rand.NewSource(seed + int64(w)))
		go func() {
			defer l.wg.Done()
			for {
				select {
				case <-l.stopCh:
					return
				default:
				}
				target := types.NodeID(rng.Intn(n) + 1)
				body, err := json.Marshal(map[string][]byte{"command": gen.Next()})
				if err != nil {
					continue
				}
				start := time.Now()
				resp, err := client.Post(f.URL(target)+"/tx", "application/json",
					bytes.NewReader(body))
				if err != nil {
					// Connection refused (crashed replica) or per-op
					// timeout; back off a beat so a dead target does
					// not turn the worker into a busy loop.
					time.Sleep(5 * time.Millisecond)
					continue
				}
				var out struct {
					Committed bool `json:"committed"`
				}
				_ = json.NewDecoder(resp.Body).Decode(&out)
				_ = resp.Body.Close()
				if out.Committed {
					l.lat.Record(time.Since(start))
				}
			}
		}()
	}
	return l
}

func (l *fleetLoad) stop() {
	close(l.stopCh)
	l.wg.Wait()
}

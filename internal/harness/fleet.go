package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/fleet"
	"github.com/bamboo-bft/bamboo/internal/metrics"
	"github.com/bamboo-bft/bamboo/internal/network"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// runFleetStep executes one load level against a fresh fleet of real
// bamboo-server processes — the same declared scenario as the
// in-process backends, with the process boundary made real: load goes
// in through each replica's HTTP API, faults cross as SIGKILL /
// re-exec / admin-endpoint pushes, and the Result is merged from every
// server's node-local slice.
//
// Both load shapes run over HTTP: closed loop keeps one in-flight
// POST /tx per worker, open loop paces Poisson arrivals per client and
// carries them through a bounded submitter pool (arrivals past the
// pool's capacity are shed and counted — see Point.Shed). The
// load-shaping extras that require in-process hooks (fanout
// transaction mirroring, commit-series buckets, hashed election) are
// rejected loudly rather than silently degraded.
func runFleetStep(exp Experiment, concurrency int, rate float64, res *Result) (Point, error) {
	var p Point
	cfg := exp.Config
	switch {
	case exp.Measure.Fanout:
		return p, fmt.Errorf("harness: fleet backend cannot fan out transactions (each server mints its own IDs)")
	case exp.Measure.Bucket > 0:
		return p, fmt.Errorf("harness: fleet backend has no commit-series hook")
	case exp.Election == ElectionHashed:
		return p, fmt.Errorf("harness: fleet backend runs the server's configured election only")
	}
	specs := fleetSpecs(exp)
	var fclients []*fleetClient
	idx := 0
	for _, cs := range specs {
		count := cs.Count
		if count <= 0 {
			count = 1
		}
		wl := exp.Workload
		if cs.Workload != nil {
			wl = *cs.Workload
		}
		for i := 0; i < count; i++ {
			gen, err := wl.New(cfg.PayloadSize, cfg.Seed+int64(idx))
			if err != nil {
				return p, err
			}
			fclients = append(fclients, &fleetClient{gen: gen, lat: &metrics.Latency{}})
			idx++
		}
	}

	f, err := fleet.New(cfg, fleet.Options{
		Dir:           exp.LedgerDir,
		DisableLedger: exp.DisableLedger,
	})
	if err != nil {
		return p, err
	}
	stopped := false
	defer func() {
		if !stopped {
			_ = f.Stop()
		}
	}()

	// The epoch — the zero point of fault offsets — is "every replica
	// ready". The in-process backends anchor just before assembly;
	// assembly there is microseconds, while spawning real processes is
	// not, so anchoring after readiness is what keeps a scenario's
	// offsets meaning the same thing on every backend.
	epoch := time.Now()
	stop := make(chan struct{})
	faultsDone := make(chan struct{})
	kills := &preKillRecorder{f: f}
	if len(exp.Faults) > 0 {
		go func() {
			defer close(faultsDone)
			exp.Faults.run(kills, epoch, stop, nil)
		}()
	} else {
		close(faultsDone)
	}

	perOp := exp.Measure.PerOpTimeout
	if perOp <= 0 {
		perOp = 5 * time.Second
	}
	workersPer := 1
	if rate > 0 {
		p.Offered = rate
	} else {
		if len(exp.Measure.Clients) > 0 {
			// A declared fleet fixes closed-loop concurrency: one
			// in-flight request per client.
			concurrency = len(fclients)
		} else {
			workersPer = concurrency
		}
		p.Offered = float64(concurrency)
	}
	load := startFleetLoad(f, fclients, cfg.N, workersPer, rate, perOp, cfg.Seed)

	if exp.Measure.Warmup > 0 {
		time.Sleep(exp.Measure.Warmup)
	}
	startCommitted := make([]uint64, len(fclients))
	var startRejected, startRetries uint64
	for i, fc := range fclients {
		fc.lat.Reset()
		startCommitted[i] = fc.committed.Load()
		startRejected += fc.rejected.Load()
		startRetries += fc.retries.Load()
	}
	startShed := load.shed.Load()
	startPoolRej := fleetPoolRejections(f, cfg.N)
	observer := types.NodeID(cfg.N)
	startRes, err := f.ReplicaResult(observer)
	if err != nil {
		return p, err
	}
	window := exp.Measure.Window
	if window <= 0 {
		window = cfg.Runtime
	}
	begin := time.Now()
	time.Sleep(window)
	elapsed := time.Since(begin)
	endRes, err := f.ReplicaResult(observer)
	if err != nil {
		return p, err
	}
	merged := &metrics.Latency{}
	var endRejected, endRetries uint64
	minTps, maxTps := math.Inf(1), 0.0
	for i, fc := range fclients {
		merged.Merge(fc.lat)
		endRejected += fc.rejected.Load()
		endRetries += fc.retries.Load()
		tps := float64(fc.committed.Load()-startCommitted[i]) / elapsed.Seconds()
		if tps < minTps {
			minTps = tps
		}
		if tps > maxTps {
			maxTps = tps
		}
	}
	p.Shed = load.shed.Load() - startShed
	p.PoolRejections = fleetPoolRejections(f, cfg.N) - startPoolRej

	close(stop)
	<-faultsDone
	load.stop()

	p.Throughput = float64(endRes.Chain.TxCommitted-startRes.Chain.TxCommitted) / elapsed.Seconds()
	p.Blocks = endRes.Chain.BlocksCommitted - startRes.Chain.BlocksCommitted
	lat := merged.Snapshot()
	p.Mean, p.P50, p.P95, p.P99, p.P999 = lat.Mean, lat.P50, lat.P95, lat.P99, lat.P999
	p.Clients = len(fclients)
	p.ClientMinTps, p.ClientMaxTps = minTps, maxTps
	if minTps > 0 {
		p.ClientDispersion = maxTps / minTps
	}
	p.Rejected = endRejected - startRejected
	p.Retries = endRetries - startRetries
	// Observer-endpoint traffic over the window (deployment-wide sums
	// land in Result.Network below).
	p.NetMsgs = endRes.Transport.Msgs - startRes.Transport.Msgs
	p.NetBytes = endRes.Transport.Bytes - startRes.Transport.Bytes

	// Merge every server's node-local slice into the deployment-wide
	// result: counters summed, ratio metrics averaged over honest
	// replicas, heights into the shared recovery verdict. A replica
	// that is down at the end contributes a zero slice — its height 0
	// fails the recovery verdict, which is the correct reading of "the
	// scenario ended with a replica dead". Transport sums count each
	// replica's CURRENT incarnation; traffic of pre-restart
	// incarnations died with their processes.
	var chain metrics.ChainStats
	var pipeline metrics.PipelineStats
	var net NetworkStats
	heights := make([]uint64, cfg.N)
	snapHeights := make([]uint64, cfg.N)
	reached := make([]bool, cfg.N)
	var violations uint64
	honest := 0
	for i := 1; i <= cfg.N; i++ {
		id := types.NodeID(i)
		rr, err := f.ReplicaResult(id)
		if err != nil {
			continue
		}
		reached[i-1] = true
		heights[i-1] = rr.CommittedHeight
		snapHeights[i-1] = rr.SnapshotHeight
		violations += rr.Violations
		net.Msgs += rr.Transport.Msgs
		net.Bytes += rr.Transport.Bytes
		net.Dropped += rr.Transport.Dropped
		net.Dials += rr.Transport.Dials
		net.Redials += rr.Transport.Redials
		net.Accepted += rr.Transport.Accepted
		if !cfg.IsByzantine(id) {
			chain.Accumulate(rr.Chain)
			pipeline.AddCounters(rr.Pipeline)
			honest++
		}
	}
	chain.AverageRatios(honest)
	p.CGR, p.BI = chain.CGR, chain.BI
	p.Pipeline = pipeline

	res.Chain = chain
	res.fillChainQuality(chain)
	res.Pipeline = pipeline
	res.Network = net
	res.Heights = heights
	res.Recovered = recoveredFromHeights(heights, cfg)
	if cfg.SnapshotInterval > 0 {
		res.SnapshotHeights = snapHeights
	}
	res.Violations += violations
	pids := f.Pids()
	res.Pids = make([]int, cfg.N)
	for i := 1; i <= cfg.N; i++ {
		res.Pids[i-1] = pids[types.NodeID(i)]
	}
	// The fault goroutine has joined (<-faultsDone above), so the
	// recorder's maps are quiescent here.
	if len(kills.committed) > 0 {
		res.PreKillHeights = make([]uint64, cfg.N)
		res.PreKillLedgerHeights = make([]uint64, cfg.N)
		for id, h := range kills.committed {
			res.PreKillHeights[id-1] = h
		}
		for id, h := range kills.ledger {
			res.PreKillLedgerHeights[id-1] = h
		}
	}

	if err := fleetConsistencyCheck(f, cfg, heights, reached); err != nil {
		return p, err
	}
	stopped = true
	if err := f.Stop(); err != nil {
		return p, fmt.Errorf("harness: fleet teardown: %w", err)
	}
	if res.Violations != 0 {
		return p, fmt.Errorf("harness: %d safety violations", res.Violations)
	}
	return p, nil
}

// preKillRecorder is the fault target the fleet step really runs the
// schedule against: it interposes on Crash to snapshot the victim's
// committed and on-disk ledger heights over HTTP in the instant before
// the SIGKILL lands, and passes everything else straight through. The
// two heights are the anchors of the exact-height recovery verdict —
// the ledger height is monotone while the process lives, so whatever
// is recorded here lower-bounds what the next incarnation's bootstrap
// replay must re-commit. The schedule runs in a single goroutine, so
// the maps need no locking; readers wait for that goroutine to join.
type preKillRecorder struct {
	f         *fleet.Fleet
	committed map[types.NodeID]uint64
	ledger    map[types.NodeID]uint64
}

func (r *preKillRecorder) ApplyConditions(spec network.ConditionsSpec) {
	r.f.ApplyConditions(spec)
}

func (r *preKillRecorder) Restart(id types.NodeID) { r.f.Restart(id) }

func (r *preKillRecorder) Crash(id types.NodeID) {
	if rr, err := r.f.ReplicaResult(id); err == nil {
		if r.committed == nil {
			r.committed = make(map[types.NodeID]uint64)
			r.ledger = make(map[types.NodeID]uint64)
		}
		// A replica killed twice keeps its highest anchors: recovery
		// must reach the furthest point any incarnation got to.
		if rr.CommittedHeight > r.committed[id] {
			r.committed[id] = rr.CommittedHeight
		}
		if rr.LedgerHeight > r.ledger[id] {
			r.ledger[id] = rr.LedgerHeight
		}
	}
	r.f.Crash(id)
}

// fleetConsistencyCheck is the cluster's cross-replica consistency
// check carried over HTTP: every pair of reachable honest replicas
// must agree on the committed block hash at their common height,
// probed at several depths so later commits cannot mask divergence.
func fleetConsistencyCheck(f *fleet.Fleet, cfg config.Config, heights []uint64, reached []bool) error {
	min := uint64(0)
	for i, h := range heights {
		if !reached[i] || cfg.IsByzantine(types.NodeID(i+1)) {
			continue
		}
		if min == 0 || h < min {
			min = h
		}
	}
	if min == 0 {
		return nil
	}
	for _, h := range []uint64{min, min / 2, 1} {
		if h == 0 {
			continue
		}
		var want string
		var wantFrom types.NodeID
		for i := 0; i < cfg.N; i++ {
			id := types.NodeID(i + 1)
			if !reached[i] || cfg.IsByzantine(id) {
				continue
			}
			got, ok, err := f.HashAt(id, h)
			if err != nil || !ok {
				continue // down, or compacted beyond window on this replica
			}
			if want == "" {
				want, wantFrom = got, id
				continue
			}
			if got != want {
				return fmt.Errorf("harness: replicas %s and %s disagree at height %d: %s vs %s",
					wantFrom, id, h, want, got)
			}
		}
	}
	return nil
}

// Submitter sizing for the open-loop fleet: arrivals are paced by
// per-client generators and carried by a fixed pool of HTTP
// submitters, each holding one in-flight POST /tx (which blocks until
// the commit response). When arrival rate times commit latency exceeds
// the pool, the backlog fills and further arrivals are shed — counted
// in Point.Shed, never silent.
const (
	fleetSubmitters  = 128
	fleetBacklogSize = 1024
)

// fleetClient is one benchmark client of the fleet backend: its own
// workload generator plus the client-side counters the harness windows
// into a Point (latency histogram, commits for fairness, rejections
// and retries for admission control).
type fleetClient struct {
	gen       interface{ Next() []byte }
	lat       *metrics.Latency
	committed metrics.Counter
	rejected  metrics.Counter
	retries   metrics.Counter
}

// fleetJob is one paced open-loop arrival awaiting an HTTP submitter.
// The intended timestamp — assigned by the pacer, before any queueing —
// is what latency is measured from, so submitter backlog shows up as
// latency instead of being coordinated-omitted away.
type fleetJob struct {
	cl       *fleetClient
	intended time.Time
	command  []byte
	target   types.NodeID
}

// fleetLoad is the load generator of the fleet backend: the in-process
// client's loops rebuilt over HTTP. Closed loop runs workers that keep
// one request in flight each; open loop runs one Poisson pacer per
// client feeding the bounded submitter pool. Submissions to a crashed
// replica fail fast and count for nothing — the same transactions a
// real client would lose.
type fleetLoad struct {
	clients []*fleetClient
	shed    metrics.Counter
	jobs    chan fleetJob
	stopCh  chan struct{}
	wg      sync.WaitGroup
}

// startFleetLoad starts the load against the fleet. rate > 0 selects
// the open loop, split evenly across clients; otherwise each client
// runs workersPer closed-loop workers.
func startFleetLoad(f *fleet.Fleet, clients []*fleetClient,
	n, workersPer int, rate float64, perOp time.Duration, seed int64) *fleetLoad {

	l := &fleetLoad{
		clients: clients,
		stopCh:  make(chan struct{}),
	}
	httpc := &http.Client{Timeout: perOp}
	if rate > 0 {
		l.jobs = make(chan fleetJob, fleetBacklogSize)
		per := rate / float64(len(clients))
		for i, fc := range clients {
			l.wg.Add(1)
			go l.pace(fc, rand.New(rand.NewSource(seed+int64(i))), n, per)
		}
		for s := 0; s < fleetSubmitters; s++ {
			l.wg.Add(1)
			go l.submitLoop(f, httpc)
		}
		return l
	}
	for i, fc := range clients {
		for w := 0; w < workersPer; w++ {
			l.wg.Add(1)
			go l.closedWorker(f, httpc, fc,
				rand.New(rand.NewSource(seed+int64(i*workersPer+w))), n)
		}
	}
	return l
}

// closedWorker keeps one POST /tx in flight, backing off briefly after
// failures and admission rejections (each resubmission after a 429 is
// a counted retry).
func (l *fleetLoad) closedWorker(f *fleet.Fleet, httpc *http.Client,
	fc *fleetClient, rng *rand.Rand, n int) {

	defer l.wg.Done()
	for {
		select {
		case <-l.stopCh:
			return
		default:
		}
		target := types.NodeID(rng.Intn(n) + 1)
		start := time.Now()
		committed, rejected := postTx(f, httpc, target, fc.gen.Next())
		switch {
		case committed:
			fc.lat.Record(time.Since(start))
			fc.committed.Add(1)
		case rejected:
			fc.rejected.Add(1)
			fc.retries.Add(1)
			// Back off a beat so a saturated pool is not hammered.
			time.Sleep(2 * time.Millisecond)
		default:
			// Connection refused (crashed replica) or per-op timeout;
			// back off so a dead target is not a busy loop.
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// pace generates this client's share of the Poisson arrival process in
// 2 ms batches, stamping each arrival with its intended time and
// handing it to the submitter pool (or shedding it, counted, when the
// backlog is full).
func (l *fleetLoad) pace(fc *fleetClient, rng *rand.Rand, n int, rate float64) {
	defer l.wg.Done()
	const tick = 2 * time.Millisecond
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	last := time.Now()
	for {
		select {
		case <-l.stopCh:
			return
		case <-ticker.C:
		}
		now := time.Now()
		window := now.Sub(last)
		arrivals := poissonRand(rng, rate*window.Seconds())
		for i := 0; i < arrivals; i++ {
			job := fleetJob{
				cl: fc,
				intended: last.Add(time.Duration(
					(float64(i) + 0.5) / float64(arrivals) * float64(window))),
				command: fc.gen.Next(),
				target:  types.NodeID(rng.Intn(n) + 1),
			}
			select {
			case l.jobs <- job:
			default:
				l.shed.Add(1)
			}
		}
		last = now
	}
}

// submitLoop drains paced arrivals, one in-flight POST /tx at a time.
func (l *fleetLoad) submitLoop(f *fleet.Fleet, httpc *http.Client) {
	defer l.wg.Done()
	for {
		select {
		case <-l.stopCh:
			return
		case job := <-l.jobs:
			committed, rejected := postTx(f, httpc, job.target, job.command)
			switch {
			case committed:
				job.cl.lat.Record(time.Since(job.intended))
				job.cl.committed.Add(1)
			case rejected:
				job.cl.rejected.Add(1)
			}
		}
	}
}

// postTx submits one transaction over HTTP and reports how it ended:
// committed, rejected by admission control (HTTP 429), or neither
// (connection failure or timeout).
func postTx(f *fleet.Fleet, httpc *http.Client, target types.NodeID, command []byte) (committed, rejected bool) {
	body, err := json.Marshal(map[string][]byte{"command": command})
	if err != nil {
		return false, false
	}
	resp, err := httpc.Post(f.URL(target)+"/tx", "application/json",
		bytes.NewReader(body))
	if err != nil {
		return false, false
	}
	var out struct {
		Committed bool `json:"committed"`
		Rejected  bool `json:"rejected"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&out)
	_ = resp.Body.Close()
	return out.Committed, out.Rejected || resp.StatusCode == http.StatusTooManyRequests
}

// poissonRand samples a Poisson-distributed count with the given mean:
// Knuth's method for small means, a normal approximation for large.
func poissonRand(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k, p := 0, 1.0
		for p > l {
			k++
			p *= rng.Float64()
		}
		return k - 1
	}
	n := int(rng.NormFloat64()*math.Sqrt(mean) + mean + 0.5)
	if n < 0 {
		return 0
	}
	return n
}

// fleetPoolRejections sums the reachable replicas' lifetime mempool
// rejection counters over the admin endpoint; callers difference two
// readings to window a delta.
func fleetPoolRejections(f *fleet.Fleet, n int) uint64 {
	var total uint64
	for i := 1; i <= n; i++ {
		if rr, err := f.ReplicaResult(types.NodeID(i)); err == nil {
			total += rr.PoolRejected
		}
	}
	return total
}

func (l *fleetLoad) stop() {
	close(l.stopCh)
	l.wg.Wait()
}

//go:build race

package harness

// raceEnabled reports that this binary was built with the race
// detector; absolute-throughput assertions are unreliable under its
// instrumentation and are relaxed.
const raceEnabled = true

package harness

import (
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/network"
	"github.com/bamboo-bft/bamboo/internal/types"
)

// TestScheduleFiresInDeclaredOrder runs a deliberately shuffled
// schedule against a real condition model and asserts events apply in
// At order, each taking effect on the model.
func TestScheduleFiresInDeclaredOrder(t *testing.T) {
	sched := FaultSchedule{
		HealAt(60 * time.Millisecond),
		CrashAt(90*time.Millisecond, 2),
		PartitionAt(20*time.Millisecond, map[types.NodeID]int{1: 1}),
		SetDelayAt(40*time.Millisecond, time.Millisecond, 0, 3),
	}
	cond := network.NewConditions(1)
	var fired []string
	done := make(chan struct{})
	go func() {
		defer close(done)
		sched.run(conditionsTarget{cond}, time.Now(), nil, func(ev FaultEvent) {
			fired = append(fired, ev.Kind)
		})
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("schedule did not finish")
	}
	want := []string{FaultPartition, FaultDelay, FaultHeal, FaultCrash}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if !cond.IsCrashed(2) {
		t.Fatal("crash event did not reach the condition model")
	}
}

// TestScheduleTieBreaksByDeclaration: equal offsets fire in
// declaration order (partition before its same-instant heal).
func TestScheduleTieBreaksByDeclaration(t *testing.T) {
	sched := FaultSchedule{
		CrashAt(10*time.Millisecond, 4),
		RestartAt(10*time.Millisecond, 4),
	}
	cond := network.NewConditions(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sched.run(conditionsTarget{cond}, time.Now(), nil, nil)
	}()
	<-done
	if cond.IsCrashed(4) {
		t.Fatal("restart declared after crash at the same offset must win")
	}
}

// TestScheduleStops: closing stop abandons pending events.
func TestScheduleStops(t *testing.T) {
	sched := FaultSchedule{CrashAt(time.Hour, 1)}
	cond := network.NewConditions(1)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		sched.run(conditionsTarget{cond}, time.Now(), stop, nil)
	}()
	close(stop)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("scheduler ignored stop")
	}
	if cond.IsCrashed(1) {
		t.Fatal("abandoned event applied")
	}
}

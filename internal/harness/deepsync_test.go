package harness

import (
	"testing"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/types"
	"github.com/bamboo-bft/bamboo/internal/workload"
)

// TestDeepCatchUpRecovery is the regression test for the liveness hole
// ledger-backed state sync closes: one replica is partitioned away
// while the remaining four keep a quorum and commit past the forest
// keep window, so after the heal the deepest ancestors the replica
// would fetch have been compacted out of its peers' forests. Before
// state sync this replica kept voting but never committed again — the
// known limitation ROADMAP used to document, which examples/scenarios
// dodged with a quorum-less 2/2 split. Now it must stream the gap from
// a peer's ledger, re-commit, and serve client requests again, and the
// harness result must say so.
//
// n is 5, not 4: under rotating leaders a partitioned replica's leader
// slots go silent AND the votes routed to it die, so at n=4 the
// survivors never certify three consecutive views and the whole
// cluster stalls (nobody outruns anything). At n=5 the three-leader
// run 3→4→5 stays intact every rotation, so the majority commits
// throughout the partition at the view-timeout cadence — which also
// makes the gap depth race-detector-proof, since it is clocked by the
// 150ms view timer rather than by host speed.
func TestDeepCatchUpRecovery(t *testing.T) {
	cfg := testConfig(config.ProtocolHotStuff)
	cfg.N = 5
	// The minimum keep window makes the timeout-paced majority-side
	// gap "deep" within a couple of seconds.
	cfg.ForestKeep = 8
	exp := Experiment{
		Name:     "deep-partition-recovery",
		Config:   cfg,
		Workload: workload.Spec{Kind: workload.KindKV, Keys: 256, WriteRatio: 0.5},
		Faults: FaultSchedule{
			// A 1/4 split: the majority keeps quorum (4 of 5) and
			// commits throughout, which is precisely what makes the
			// isolated replica's gap outrun the keep window.
			PartitionAt(500*time.Millisecond, map[types.NodeID]int{2: 1}),
			HealAt(2500 * time.Millisecond),
		},
		Measure: MeasurePlan{
			Warmup:      200 * time.Millisecond,
			Window:      4 * time.Second,
			Concurrency: 16,
			// Short per-op timeout: workers whose transaction lands on
			// the partitioned replica give up and resubmit quickly.
			PerOpTimeout: 400 * time.Millisecond,
			Bucket:       250 * time.Millisecond,
		},
	}
	res, err := Run(exp)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent || res.Violations != 0 {
		t.Fatalf("deep-partition run inconsistent: consistent=%v violations=%d",
			res.Consistent, res.Violations)
	}
	if res.Points[0].Throughput <= 0 {
		t.Fatal("majority side committed nothing")
	}

	// The headline: the isolated replica re-committed. Recovered means
	// every honest replica ended within one keep window of the highest
	// honest height — impossible for node 2 without deep sync, since
	// the partition-era gap exceeded the window.
	if !res.Recovered {
		t.Fatalf("partitioned replica never recovered: heights %v", res.Heights)
	}
	if len(res.Heights) != cfg.N {
		t.Fatalf("heights for %d replicas, want %d", len(res.Heights), cfg.N)
	}

	// And it recovered through state sync, not luck: ranged batches
	// were requested, served, and applied, at least a full keep window
	// deep. The 2s partition at the ~450ms commit-wave cadence leaves
	// a gap of roughly 12–20 heights, so at least cfg.ForestKeep of
	// them had to arrive via sync.
	if res.Pipeline.SyncBlocksApplied < uint64(cfg.ForestKeep) {
		t.Fatalf("sync applied %d blocks, want at least %d (pipeline %+v)",
			res.Pipeline.SyncBlocksApplied, cfg.ForestKeep, res.Pipeline)
	}
	if res.Pipeline.SyncRequestsSent == 0 || res.Pipeline.SyncBatchesServed == 0 {
		t.Fatalf("sync counters missing a side: %+v", res.Pipeline)
	}

	// The committed-rate timeline must show commits at the tail — the
	// cluster as a whole (client requests included) is live well after
	// the heal.
	if len(res.Series) < 8 {
		t.Fatalf("series too short: %d buckets", len(res.Series))
	}
	var tail float64
	for _, v := range res.Series[len(res.Series)-3:] {
		tail += v
	}
	if tail == 0 {
		t.Fatalf("no commits after heal: series %v", res.Series)
	}
}

// TestRecoveryVerdictFlagsLaggards: with persistence disabled the same
// deep partition must FAIL to recover — the verdict is a real signal,
// not a constant. (This is the old pre-state-sync behaviour, kept
// reachable through Config knobs for exactly this kind of control.)
func TestRecoveryVerdictFlagsLaggards(t *testing.T) {
	if testing.Short() {
		t.Skip("control run for the recovery verdict")
	}
	cfg := testConfig(config.ProtocolHotStuff)
	cfg.N = 5
	cfg.ForestKeep = 8
	exp := Experiment{
		Name:     "deep-partition-no-ledger",
		Config:   cfg,
		Workload: workload.Spec{Kind: workload.KindKV, Keys: 64, WriteRatio: 0.5},
		Faults: FaultSchedule{
			PartitionAt(400*time.Millisecond, map[types.NodeID]int{2: 1}),
			HealAt(2400 * time.Millisecond),
		},
		Measure: MeasurePlan{
			Warmup:       150 * time.Millisecond,
			Window:       3200 * time.Millisecond,
			Concurrency:  16,
			PerOpTimeout: 400 * time.Millisecond,
		},
		DisableLedger: true,
	}
	res, err := Run(exp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered {
		t.Fatalf("ledger-less replica reported recovered across a deep gap: heights %v", res.Heights)
	}
	if res.Pipeline.SyncBlocksApplied != 0 {
		t.Fatalf("sync applied %d blocks with no ledger to serve from", res.Pipeline.SyncBlocksApplied)
	}
}

// Package harness is the declarative experiment layer of Bamboo: an
// Experiment combines a run configuration, a pluggable workload, a
// timed fault schedule, and a measurement plan; Run executes it and
// returns a structured, JSON-marshalable Result. A scenario is data,
// not a bespoke main() — the bench runners, the cmd tools, and the
// examples all build on this package.
package harness

import (
	"fmt"
	"strings"
	"time"

	"github.com/bamboo-bft/bamboo/internal/cluster"
	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/election"
	"github.com/bamboo-bft/bamboo/internal/metrics"
	"github.com/bamboo-bft/bamboo/internal/types"
	"github.com/bamboo-bft/bamboo/internal/workload"
)

// Election modes accepted by Experiment.Election.
const (
	ElectionRoundRobin = "round-robin"
	ElectionHashed     = "hashed"
)

// Backend names accepted by Experiment.Backend.
const (
	BackendSwitch = cluster.BackendSwitch
	BackendTCP    = cluster.BackendTCP
	// BackendFleet deploys every replica as its own bamboo-server OS
	// process on loopback (see internal/fleet).
	BackendFleet = "fleet"
)

// Backends returns the registered deployment backends, in
// documentation order. It is the single list experiment validation
// and the command-line tools check and print — a backend added here
// is accepted everywhere at once.
func Backends() []string {
	return []string{BackendSwitch, BackendTCP, BackendFleet}
}

// Experiment declares one complete scenario.
type Experiment struct {
	// Name labels the experiment in results and reports.
	Name string `json:"name,omitempty"`
	// Config is the run configuration (Table I of the paper).
	Config config.Config `json:"config"`
	// Workload declares the transaction generator (default: padded
	// no-op at Config.PayloadSize).
	Workload workload.Spec `json:"workload"`
	// Faults is the timed fault schedule, with offsets measured from
	// the experiment epoch (just before cluster assembly — the same
	// anchor as the committed-rate buckets).
	Faults FaultSchedule `json:"faults,omitempty"`
	// Measure is the measurement plan.
	Measure MeasurePlan `json:"measure"`
	// Election selects leader election: "" or "round-robin" keeps the
	// configuration's default, "hashed" uses hash-based pseudo-random
	// election (the Section V-E design choice).
	Election string `json:"election,omitempty"`
	// Backend selects the deployment the scenario runs over: "" or
	// "switch" for the in-process channel switch, "tcp" for one real
	// loopback listener per replica, "fleet" for one bamboo-server OS
	// process per replica. The fault schedule means the same thing on
	// all of them — partitions, delays, and drops compile into
	// condition-model changes (applied directly in-process, pushed over
	// each server's admin endpoint on the fleet), while crashes
	// escalate with the backend: condition marks on the switch, socket
	// teardown on TCP, SIGKILL and re-exec on the fleet — so the same
	// declared experiment yields comparable Results on any backend.
	Backend string `json:"backend,omitempty"`
	// LedgerDir, when set, gives every replica a persistent ledger
	// file of its committed chain under this directory. When empty,
	// replicas get ledgers in a temporary directory removed at
	// teardown — persistence is what ledger-backed deep catch-up
	// serves from, so it is on by default.
	LedgerDir string `json:"ledgerDir,omitempty"`
	// DisableLedger turns per-replica persistence off, and with it
	// deep catch-up: replicas isolated past the forest keep window
	// then stay behind. Control-experiment knob.
	DisableLedger bool `json:"disableLedger,omitempty"`
}

// MeasurePlan declares how a scenario is loaded and measured. Exactly
// one load shape applies, checked in this order: Levels (closed-loop
// concurrency ladder, a fresh cluster per level), Rates (open-loop
// Poisson rate ladder), Rate (one open-loop run), else one
// closed-loop run at Concurrency.
type MeasurePlan struct {
	// Warmup runs load without measuring before every window.
	Warmup time.Duration `json:"warmup"`
	// Window is the measured interval; 0 uses Config.Runtime.
	Window time.Duration `json:"window"`
	// Concurrency is the closed-loop worker count of a single run;
	// 0 uses Config.Concurrency.
	Concurrency int `json:"concurrency,omitempty"`
	// Levels is the closed-loop concurrency ladder.
	Levels []int `json:"levels,omitempty"`
	// Rate is the open-loop arrival rate (transactions/second).
	Rate float64 `json:"rate,omitempty"`
	// Rates is the open-loop rate ladder.
	Rates []float64 `json:"rates,omitempty"`
	// PerOpTimeout bounds each closed-loop wait (default 5s).
	PerOpTimeout time.Duration `json:"perOpTimeout,omitempty"`
	// SaturationStop ends a Levels ladder early once throughput
	// clearly degrades past its best (the paper's "increase
	// concurrency until saturated").
	SaturationStop bool `json:"saturationStop,omitempty"`
	// Bucket, when positive, samples committed transactions into
	// fixed-width time buckets from cluster start (Result.Series) —
	// the responsiveness timeline of Figure 15.
	Bucket time.Duration `json:"bucket,omitempty"`
	// Fanout broadcasts each client transaction to every replica
	// instead of one chosen at random (Section V-E).
	Fanout bool `json:"fanout,omitempty"`
	// WithStores attaches a kvstore execution layer to every replica
	// even for workloads that do not require one.
	WithStores bool `json:"withStores,omitempty"`
}

// Point is one measured datum of a throughput/latency experiment.
type Point struct {
	// Offered is the offered load: concurrency for closed-loop runs,
	// transactions/second for open-loop runs.
	Offered float64 `json:"offered"`
	// Throughput is committed transactions/second observed at the
	// observer replica over the window.
	Throughput float64 `json:"throughput"`
	// Mean, P50, P99 are client-side latencies (nanoseconds in JSON).
	Mean time.Duration `json:"mean"`
	P50  time.Duration `json:"p50"`
	P99  time.Duration `json:"p99"`
	// CGR and BI are the chain micro-metrics over the window.
	CGR float64 `json:"cgr"`
	BI  float64 `json:"bi"`
	// Blocks is the observer's committed block count over the window.
	Blocks uint64 `json:"blocks"`
	// NetMsgs and NetBytes are switch-wide message totals over the
	// window.
	NetMsgs  uint64 `json:"netMsgs"`
	NetBytes uint64 `json:"netBytes"`
	// Pipeline sums the pipeline stage counters over honest replicas
	// (all zero when the pipeline stages are disabled).
	Pipeline metrics.PipelineStats `json:"pipeline"`
}

// NetworkStats are the deployment-wide message counters of a whole
// run: switch counters on the switch backend, per-endpoint transport
// sums on TCP. The connection-churn fields are TCP-only (zero, and
// omitted from JSON, in simulation).
type NetworkStats struct {
	Msgs    uint64 `json:"msgs"`
	Bytes   uint64 `json:"bytes"`
	Dropped uint64 `json:"dropped"`
	// Dials counts outbound connections; Redials the subset replacing
	// an earlier connection to the same peer (reconnects after
	// crash-driven resets); Accepted the inbound connections.
	Dials    uint64 `json:"dials,omitempty"`
	Redials  uint64 `json:"redials,omitempty"`
	Accepted uint64 `json:"accepted,omitempty"`
}

// Result is the structured outcome of one experiment. It marshals to
// JSON losslessly (durations are nanosecond integers), so results can
// feed dashboards, regression tracking, and cross-run comparison.
type Result struct {
	// Name echoes the experiment label.
	Name string `json:"name,omitempty"`
	// Backend records the transport the run deployed over ("switch"
	// or "tcp"), so result files from the two paths stay
	// distinguishable when compared.
	Backend string `json:"backend,omitempty"`
	// Config, Workload, Faults, and Measure echo the declared
	// scenario, so a result file is self-describing and the run it
	// records can be reconstructed from it.
	Config   config.Config `json:"config"`
	Workload workload.Spec `json:"workload"`
	Faults   FaultSchedule `json:"faults,omitempty"`
	Measure  MeasurePlan   `json:"measure"`
	// Points holds one datum per measured load level.
	Points []Point `json:"points"`
	// Series is the committed-rate timeline (Tx/s per bucket of
	// Measure.Bucket) when the plan sets one. Like Chain/Pipeline/
	// Network below it covers the final level only — pair Bucket
	// with a single-run plan, not a ladder.
	Series []float64 `json:"series,omitempty"`
	// Chain aggregates the chain micro-metrics of the final level.
	Chain metrics.ChainStats `json:"chain"`
	// Pipeline sums the pipeline counters of the final level.
	Pipeline metrics.PipelineStats `json:"pipeline"`
	// Network totals the switch counters of the final level.
	Network NetworkStats `json:"network"`
	// Heights is every replica's final committed height (index is
	// replica ID minus one) at the end of the final level — the raw
	// material of the recovery verdict below.
	Heights []uint64 `json:"heights,omitempty"`
	// SnapshotHeights is every replica's final snapshot height
	// (captured locally or installed from peers), present when the
	// scenario enables snapshotting. A non-zero entry on a replica
	// that was isolated past the compacted history proves it
	// recovered by installing a snapshot rather than streaming the
	// whole gap.
	SnapshotHeights []uint64 `json:"snapshotHeights,omitempty"`
	// PreKillHeights and PreKillLedgerHeights record, per replica
	// (index is ID minus one), the committed height and the on-disk
	// ledger height fetched in the instant before that replica's
	// process was SIGKILLed — zero for replicas never killed. They
	// anchor the exact-height recovery verdict of kill/restart
	// scenarios: with the safety WAL there is no replay holdback, so a
	// restarted replica must re-commit at least its pre-kill ledger on
	// bootstrap (ReplayedBlocks >= PreKillLedgerHeights[i]) and finish
	// the run at or above its pre-kill committed height. Fleet backend
	// only — in-process crashes never lose the replica's memory.
	PreKillHeights       []uint64 `json:"preKillHeights,omitempty"`
	PreKillLedgerHeights []uint64 `json:"preKillLedgerHeights,omitempty"`
	// Pids records, on the fleet backend, the OS process ID of every
	// replica's latest incarnation (index is replica ID minus one) —
	// the audit trail that the run really was multi-process and that
	// restart legs re-exec'd. Absent on in-process backends.
	Pids []int `json:"pids,omitempty"`
	// Recovered reports whether every honest replica finished within
	// one forest keep window of the highest honest committed height.
	// With ledger-backed state sync this holds even for schedules
	// that isolate a replica for far longer than the keep window; a
	// false verdict means some replica was still catching up (or
	// never did) when the run ended.
	Recovered bool `json:"recovered"`
	// Consistent records the cross-replica consistency verdict over
	// every level.
	Consistent bool `json:"consistent"`
	// Violations sums safety violations across replicas and levels;
	// correct runs report zero.
	Violations uint64 `json:"violations"`
	// Elapsed is the wall-clock cost of the whole experiment.
	Elapsed time.Duration `json:"elapsed"`
	// Error records what ended the run early, if anything.
	Error string `json:"error,omitempty"`
}

// Validate reports the first problem with the declared experiment.
// Config validation happens at cluster assembly.
func (e *Experiment) Validate() error {
	if err := e.Workload.Validate(); err != nil {
		return err
	}
	if err := e.Faults.Validate(); err != nil {
		return err
	}
	// Events naming replicas outside the cluster would fire as
	// silent no-ops (crashing node 99 of 4 marks nobody).
	for i, ev := range e.Faults {
		for _, id := range ev.Nodes {
			if id < 1 || int(id) > e.Config.N {
				return fmt.Errorf("harness: fault event %d names replica %s outside n=%d", i, id, e.Config.N)
			}
		}
		for id := range ev.Groups {
			if id < 1 || int(id) > e.Config.N {
				return fmt.Errorf("harness: fault event %d partitions replica %s outside n=%d", i, id, e.Config.N)
			}
		}
	}
	switch e.Election {
	case "", ElectionRoundRobin, ElectionHashed:
	default:
		return fmt.Errorf("harness: unknown election mode %q", e.Election)
	}
	if e.Backend != "" {
		known := false
		for _, b := range Backends() {
			if e.Backend == b {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("harness: unknown backend %q (have %s)",
				e.Backend, strings.Join(Backends(), ", "))
		}
	}
	for i, lvl := range e.Measure.Levels {
		if lvl <= 0 {
			return fmt.Errorf("harness: level %d must be positive, have %d", i, lvl)
		}
	}
	for i, rate := range e.Measure.Rates {
		if rate <= 0 {
			return fmt.Errorf("harness: rate %d must be positive, have %v", i, rate)
		}
	}
	if e.Measure.Rate < 0 || e.Measure.Concurrency < 0 {
		return fmt.Errorf("harness: negative load level")
	}
	return nil
}

// Run executes the experiment and returns its structured result. On
// error the returned Result still carries every point measured before
// the failure, with Error set.
func Run(exp Experiment) (*Result, error) {
	start := time.Now()
	// Consistent stays false until every level has passed its
	// cross-replica consistency check: an errored or never-run
	// experiment must not serialize as a verified-consistent one.
	backend := exp.Backend
	if backend == "" {
		backend = BackendSwitch
	}
	res := &Result{
		Name:     exp.Name,
		Backend:  backend,
		Config:   exp.Config,
		Workload: exp.Workload,
		Faults:   exp.Faults,
		Measure:  exp.Measure,
	}
	fail := func(err error) (*Result, error) {
		res.Error = err.Error()
		res.Elapsed = time.Since(start)
		return res, err
	}
	if err := exp.Validate(); err != nil {
		return fail(err)
	}

	type step struct {
		concurrency int
		rate        float64
	}
	var steps []step
	switch {
	case len(exp.Measure.Levels) > 0:
		for _, lvl := range exp.Measure.Levels {
			steps = append(steps, step{concurrency: lvl})
		}
	case len(exp.Measure.Rates) > 0:
		for _, rate := range exp.Measure.Rates {
			steps = append(steps, step{rate: rate})
		}
	case exp.Measure.Rate > 0:
		steps = []step{{rate: exp.Measure.Rate}}
	default:
		conc := exp.Measure.Concurrency
		if conc == 0 {
			conc = exp.Config.Concurrency
		}
		steps = []step{{concurrency: conc}}
	}

	var best float64
	for _, st := range steps {
		var p Point
		var err error
		if backend == BackendFleet {
			p, err = runFleetStep(exp, st.concurrency, st.rate, res)
		} else {
			p, err = runStep(exp, st.concurrency, st.rate, res)
		}
		if err != nil {
			return fail(err)
		}
		res.Points = append(res.Points, p)
		if exp.Measure.SaturationStop {
			if p.Throughput > best {
				best = p.Throughput
			} else if p.Throughput < 0.9*best && len(res.Points) >= 3 {
				break // clearly past saturation
			}
		}
	}
	res.Consistent = true
	res.Elapsed = time.Since(start)
	return res, nil
}

// runStep executes one load level on a fresh cluster, filling the
// result's whole-run aggregates and returning the window's point.
func runStep(exp Experiment, concurrency int, rate float64, res *Result) (Point, error) {
	var p Point
	cfg := exp.Config
	opts := cluster.Options{
		Backend:       exp.Backend,
		WithStores:    exp.Measure.WithStores || exp.Workload.Stores(),
		LedgerDir:     exp.LedgerDir,
		DisableLedger: exp.DisableLedger,
	}
	if exp.Election == ElectionHashed {
		opts.Elector = election.NewHashed(cfg.N, cfg.Seed)
	}
	gen, err := exp.Workload.New(cfg.PayloadSize, cfg.Seed)
	if err != nil {
		return p, err
	}

	// One epoch anchors both the committed-rate buckets and the fault
	// offsets, so the timeline and the schedule line up exactly.
	epoch := time.Now()
	var series *metrics.TimeSeries
	if exp.Measure.Bucket > 0 {
		series = metrics.NewTimeSeries(epoch, exp.Measure.Bucket)
		opts.CommitSeries = series
	}
	c, err := cluster.New(cfg, opts)
	if err != nil {
		return p, err
	}
	defer c.Stop()
	c.Start()

	// The fault scheduler compiles the declared timeline onto the
	// cluster: condition-model changes on both backends, plus real
	// socket teardown for crashes over TCP.
	stop := make(chan struct{})
	defer close(stop)
	if len(exp.Faults) > 0 {
		go exp.Faults.run(c, epoch, stop, nil)
	}

	cl, err := c.NewClient()
	if err != nil {
		return p, err
	}
	cl.SetWorkload(gen)
	cl.SetFanout(exp.Measure.Fanout)
	window := exp.Measure.Window
	if window <= 0 {
		window = cfg.Runtime
	}
	perOp := exp.Measure.PerOpTimeout
	if perOp <= 0 {
		perOp = 5 * time.Second
	}
	if rate > 0 {
		p.Offered = rate
		cl.RunOpenLoop(rate)
	} else {
		p.Offered = float64(concurrency)
		cl.RunClosedLoop(concurrency, perOp)
	}

	if exp.Measure.Warmup > 0 {
		time.Sleep(exp.Measure.Warmup)
	}
	cl.Latency().Reset()
	observer := c.Node(c.Observer())
	startChain := observer.Tracker().Snapshot()
	startMsgs, startBytes, _ := c.NetworkStats()
	begin := time.Now()
	time.Sleep(window)
	elapsed := time.Since(begin)
	endChain := observer.Tracker().Snapshot()
	endMsgs, endBytes, _ := c.NetworkStats()
	lat := cl.Latency().Snapshot()
	chain := c.AggregateChain()

	p.Throughput = float64(endChain.TxCommitted-startChain.TxCommitted) / elapsed.Seconds()
	p.Mean, p.P50, p.P99 = lat.Mean, lat.P50, lat.P99
	p.CGR, p.BI = chain.CGR, chain.BI
	p.Blocks = endChain.BlocksCommitted - startChain.BlocksCommitted
	p.NetMsgs, p.NetBytes = endMsgs-startMsgs, endBytes-startBytes
	p.Pipeline = c.AggregatePipeline()

	res.Chain = chain
	res.Pipeline = p.Pipeline
	msgs, bytes, dropped := c.NetworkStats()
	ts := c.TransportStats()
	res.Network = NetworkStats{
		Msgs: msgs, Bytes: bytes, Dropped: dropped,
		Dials: ts.Dials, Redials: ts.Redials, Accepted: ts.Accepted,
	}
	res.Heights, res.Recovered = recoveryVerdict(c, cfg)
	if cfg.SnapshotInterval > 0 {
		res.SnapshotHeights = make([]uint64, cfg.N)
		for i := 1; i <= cfg.N; i++ {
			res.SnapshotHeights[i-1] = c.Node(types.NodeID(i)).Status().SnapshotHeight
		}
	}
	if series != nil {
		res.Series = series.Rates()
	}
	res.Violations += c.Violations()
	if err := c.ConsistencyCheck(); err != nil {
		return p, err
	}
	if res.Violations != 0 {
		return p, fmt.Errorf("harness: %d safety violations", res.Violations)
	}
	return p, nil
}

// recoveryVerdict snapshots every replica's committed height at the
// end of a level and judges whether the honest ones converged.
func recoveryVerdict(c *cluster.Cluster, cfg config.Config) ([]uint64, bool) {
	heights := make([]uint64, cfg.N)
	for i := 1; i <= cfg.N; i++ {
		heights[i-1] = c.Node(types.NodeID(i)).Status().CommittedHeight
	}
	return heights, recoveredFromHeights(heights, cfg)
}

// recoveredFromHeights judges recovery from the per-replica final
// committed heights (index = replica ID − 1): every honest replica
// must be within one forest keep window of the highest honest height,
// the band the live fetch path covers without deep sync. Fault
// schedules that isolate a replica for longer than the keep window
// only pass this with ledger-backed catch-up working. Shared by the
// in-process backends (which read heights off the cluster) and the
// fleet backend (which collects them over HTTP).
func recoveredFromHeights(heights []uint64, cfg config.Config) bool {
	var maxHonest uint64
	for i, h := range heights {
		if !cfg.IsByzantine(types.NodeID(i+1)) && h > maxHonest {
			maxHonest = h
		}
	}
	slack := uint64(cfg.KeepWindow())
	for i, h := range heights {
		if cfg.IsByzantine(types.NodeID(i + 1)) {
			continue
		}
		if h+slack < maxHonest {
			return false
		}
	}
	return true
}

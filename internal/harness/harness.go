// Package harness is the declarative experiment layer of Bamboo: an
// Experiment combines a run configuration, a pluggable workload, a
// timed fault schedule, and a measurement plan; Run executes it and
// returns a structured, JSON-marshalable Result. A scenario is data,
// not a bespoke main() — the bench runners, the cmd tools, and the
// examples all build on this package.
package harness

import (
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/bamboo-bft/bamboo/internal/client"
	"github.com/bamboo-bft/bamboo/internal/cluster"
	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/election"
	"github.com/bamboo-bft/bamboo/internal/metrics"
	"github.com/bamboo-bft/bamboo/internal/types"
	"github.com/bamboo-bft/bamboo/internal/workload"
)

// Election modes accepted by Experiment.Election.
const (
	ElectionRoundRobin = "round-robin"
	ElectionHashed     = "hashed"
)

// Backend names accepted by Experiment.Backend.
const (
	BackendSwitch = cluster.BackendSwitch
	BackendTCP    = cluster.BackendTCP
	// BackendFleet deploys every replica as its own bamboo-server OS
	// process on loopback (see internal/fleet).
	BackendFleet = "fleet"
)

// Backends returns the registered deployment backends, in
// documentation order. It is the single list experiment validation
// and the command-line tools check and print — a backend added here
// is accepted everywhere at once.
func Backends() []string {
	return []string{BackendSwitch, BackendTCP, BackendFleet}
}

// Experiment declares one complete scenario.
type Experiment struct {
	// Name labels the experiment in results and reports.
	Name string `json:"name,omitempty"`
	// Config is the run configuration (Table I of the paper).
	Config config.Config `json:"config"`
	// Workload declares the transaction generator (default: padded
	// no-op at Config.PayloadSize).
	Workload workload.Spec `json:"workload"`
	// Faults is the timed fault schedule, with offsets measured from
	// the experiment epoch (just before cluster assembly — the same
	// anchor as the committed-rate buckets).
	Faults FaultSchedule `json:"faults,omitempty"`
	// Measure is the measurement plan.
	Measure MeasurePlan `json:"measure"`
	// Election selects leader election: "" or "round-robin" keeps the
	// configuration's default, "hashed" uses hash-based pseudo-random
	// election (the Section V-E design choice).
	Election string `json:"election,omitempty"`
	// Backend selects the deployment the scenario runs over: "" or
	// "switch" for the in-process channel switch, "tcp" for one real
	// loopback listener per replica, "fleet" for one bamboo-server OS
	// process per replica. The fault schedule means the same thing on
	// all of them — partitions, delays, and drops compile into
	// condition-model changes (applied directly in-process, pushed over
	// each server's admin endpoint on the fleet), while crashes
	// escalate with the backend: condition marks on the switch, socket
	// teardown on TCP, SIGKILL and re-exec on the fleet — so the same
	// declared experiment yields comparable Results on any backend.
	Backend string `json:"backend,omitempty"`
	// LedgerDir, when set, gives every replica a persistent ledger
	// file of its committed chain under this directory. When empty,
	// replicas get ledgers in a temporary directory removed at
	// teardown — persistence is what ledger-backed deep catch-up
	// serves from, so it is on by default.
	LedgerDir string `json:"ledgerDir,omitempty"`
	// DisableLedger turns per-replica persistence off, and with it
	// deep catch-up: replicas isolated past the forest keep window
	// then stay behind. Control-experiment knob.
	DisableLedger bool `json:"disableLedger,omitempty"`
}

// ClientSpec declares one population of identically configured
// benchmark clients inside a MeasurePlan — the unit of a mixed
// workload fleet (e.g. 90 key-value readers alongside 10 bank-transfer
// writers).
type ClientSpec struct {
	// Count is the number of clients in this population (0 means 1).
	Count int `json:"count"`
	// Workload overrides the experiment-level workload for this
	// population; nil inherits it. Every client gets its own generator
	// instance, deterministically seeded from Config.Seed plus the
	// client's fleet index, so mixed populations replay exactly.
	Workload *workload.Spec `json:"workload,omitempty"`
}

// MeasurePlan declares how a scenario is loaded and measured. Exactly
// one load shape applies, checked in this order: Levels (closed-loop
// concurrency ladder, a fresh cluster per level), Rates (open-loop
// Poisson rate ladder), Rate (one open-loop run), else one
// closed-loop run at Concurrency.
type MeasurePlan struct {
	// Warmup runs load without measuring before every window.
	Warmup time.Duration `json:"warmup"`
	// Window is the measured interval; 0 uses Config.Runtime.
	Window time.Duration `json:"window"`
	// Concurrency is the closed-loop worker count of a single run;
	// 0 uses Config.Concurrency. Mutually exclusive with Clients.
	Concurrency int `json:"concurrency,omitempty"`
	// Levels is the closed-loop concurrency ladder. Mutually exclusive
	// with Clients.
	Levels []int `json:"levels,omitempty"`
	// Rate is the open-loop arrival rate (transactions/second). With
	// Clients, the rate is split evenly across the whole fleet.
	Rate float64 `json:"rate,omitempty"`
	// Rates is the open-loop rate ladder.
	Rates []float64 `json:"rates,omitempty"`
	// Clients declares the benchmark fleet as workload populations.
	// Empty means one client running the experiment workload. Under
	// closed loop each declared client keeps exactly one request in
	// flight (so total concurrency = total count, and Concurrency or
	// Levels must not also be set); under open loop the arrival rate is
	// split evenly across all clients. Per-client committed throughput
	// feeds the Point fairness fields.
	Clients []ClientSpec `json:"clients,omitempty"`
	// PerOpTimeout bounds each closed-loop wait (default 5s).
	PerOpTimeout time.Duration `json:"perOpTimeout,omitempty"`
	// SaturationStop ends a Levels ladder early once throughput
	// clearly degrades past its best (the paper's "increase
	// concurrency until saturated").
	SaturationStop bool `json:"saturationStop,omitempty"`
	// Bucket, when positive, samples committed transactions into
	// fixed-width time buckets from cluster start (Result.Series) —
	// the responsiveness timeline of Figure 15.
	Bucket time.Duration `json:"bucket,omitempty"`
	// Fanout broadcasts each client transaction to every replica
	// instead of one chosen at random (Section V-E).
	Fanout bool `json:"fanout,omitempty"`
	// WithStores attaches a kvstore execution layer to every replica
	// even for workloads that do not require one.
	WithStores bool `json:"withStores,omitempty"`
}

// Point is one measured datum of a throughput/latency experiment.
type Point struct {
	// Offered is the offered load: concurrency for closed-loop runs,
	// transactions/second for open-loop runs.
	Offered float64 `json:"offered"`
	// Throughput is committed transactions/second observed at the
	// observer replica over the window.
	Throughput float64 `json:"throughput"`
	// Mean and the percentiles are client-side latencies (nanoseconds
	// in JSON), merged across every client's log-bucketed histogram.
	// Open-loop runs stamp latency from the *intended* send time, so
	// the tail percentiles are free of coordinated omission.
	Mean time.Duration `json:"mean"`
	P50  time.Duration `json:"p50"`
	P95  time.Duration `json:"p95"`
	P99  time.Duration `json:"p99"`
	P999 time.Duration `json:"p999"`
	// Clients is the number of benchmark clients driving this point.
	Clients int `json:"clients,omitempty"`
	// ClientMinTps/ClientMaxTps bracket per-client committed throughput
	// over the window, and ClientDispersion is their ratio (max/min; 0
	// when some client committed nothing) — the fairness check that no
	// client population starves another.
	ClientMinTps     float64 `json:"clientMinTps,omitempty"`
	ClientMaxTps     float64 `json:"clientMaxTps,omitempty"`
	ClientDispersion float64 `json:"clientDispersion,omitempty"`
	// Rejected and Retries count client-visible admission rejections
	// and the resubmissions they provoked over the window.
	Rejected uint64 `json:"rejected,omitempty"`
	Retries  uint64 `json:"retries,omitempty"`
	// PoolRejections sums the replicas' server-side mempool rejections
	// over the window — nonzero means admission control engaged.
	PoolRejections uint64 `json:"poolRejections,omitempty"`
	// Shed counts open-loop arrivals the fleet backend dropped because
	// its bounded HTTP submitter pool was saturated — offered load that
	// never reached a replica. Always zero on in-process backends,
	// whose open loop submits without blocking.
	Shed uint64 `json:"shed,omitempty"`
	// CGR and BI are the chain micro-metrics over the window.
	CGR float64 `json:"cgr"`
	BI  float64 `json:"bi"`
	// Blocks is the observer's committed block count over the window.
	Blocks uint64 `json:"blocks"`
	// NetMsgs and NetBytes are switch-wide message totals over the
	// window.
	NetMsgs  uint64 `json:"netMsgs"`
	NetBytes uint64 `json:"netBytes"`
	// Pipeline sums the pipeline stage counters over honest replicas
	// (all zero when the pipeline stages are disabled).
	Pipeline metrics.PipelineStats `json:"pipeline"`
}

// NetworkStats are the deployment-wide message counters of a whole
// run: switch counters on the switch backend, per-endpoint transport
// sums on TCP. The connection-churn fields are TCP-only (zero, and
// omitted from JSON, in simulation).
type NetworkStats struct {
	Msgs    uint64 `json:"msgs"`
	Bytes   uint64 `json:"bytes"`
	Dropped uint64 `json:"dropped"`
	// Dials counts outbound connections; Redials the subset replacing
	// an earlier connection to the same peer (reconnects after
	// crash-driven resets); Accepted the inbound connections.
	Dials    uint64 `json:"dials,omitempty"`
	Redials  uint64 `json:"redials,omitempty"`
	Accepted uint64 `json:"accepted,omitempty"`
}

// Result is the structured outcome of one experiment. It marshals to
// JSON losslessly (durations are nanosecond integers), so results can
// feed dashboards, regression tracking, and cross-run comparison.
type Result struct {
	// Name echoes the experiment label.
	Name string `json:"name,omitempty"`
	// Backend records the transport the run deployed over ("switch"
	// or "tcp"), so result files from the two paths stay
	// distinguishable when compared.
	Backend string `json:"backend,omitempty"`
	// Config, Workload, Faults, and Measure echo the declared
	// scenario, so a result file is self-describing and the run it
	// records can be reconstructed from it.
	Config   config.Config `json:"config"`
	Workload workload.Spec `json:"workload"`
	Faults   FaultSchedule `json:"faults,omitempty"`
	Measure  MeasurePlan   `json:"measure"`
	// Points holds one datum per measured load level.
	Points []Point `json:"points"`
	// Series is the committed-rate timeline (Tx/s per bucket of
	// Measure.Bucket) when the plan sets one. Like Chain/Pipeline/
	// Network below it covers the final level only — pair Bucket
	// with a single-run plan, not a ladder.
	Series []float64 `json:"series,omitempty"`
	// Chain aggregates the chain micro-metrics of the final level.
	Chain metrics.ChainStats `json:"chain"`
	// Pipeline sums the pipeline counters of the final level.
	Pipeline metrics.PipelineStats `json:"pipeline"`
	// Network totals the switch counters of the final level.
	Network NetworkStats `json:"network"`
	// Heights is every replica's final committed height (index is
	// replica ID minus one) at the end of the final level — the raw
	// material of the recovery verdict below.
	Heights []uint64 `json:"heights,omitempty"`
	// SnapshotHeights is every replica's final snapshot height
	// (captured locally or installed from peers), present when the
	// scenario enables snapshotting. A non-zero entry on a replica
	// that was isolated past the compacted history proves it
	// recovered by installing a snapshot rather than streaming the
	// whole gap.
	SnapshotHeights []uint64 `json:"snapshotHeights,omitempty"`
	// PreKillHeights and PreKillLedgerHeights record, per replica
	// (index is ID minus one), the committed height and the on-disk
	// ledger height fetched in the instant before that replica's
	// process was SIGKILLed — zero for replicas never killed. They
	// anchor the exact-height recovery verdict of kill/restart
	// scenarios: with the safety WAL there is no replay holdback, so a
	// restarted replica must re-commit at least its pre-kill ledger on
	// bootstrap (ReplayedBlocks >= PreKillLedgerHeights[i]) and finish
	// the run at or above its pre-kill committed height. Fleet backend
	// only — in-process crashes never lose the replica's memory.
	PreKillHeights       []uint64 `json:"preKillHeights,omitempty"`
	PreKillLedgerHeights []uint64 `json:"preKillLedgerHeights,omitempty"`
	// Pids records, on the fleet backend, the OS process ID of every
	// replica's latest incarnation (index is replica ID minus one) —
	// the audit trail that the run really was multi-process and that
	// restart legs re-exec'd. Absent on in-process backends.
	Pids []int `json:"pids,omitempty"`
	// Recovered reports whether every honest replica finished within
	// one forest keep window of the highest honest committed height.
	// With ledger-backed state sync this holds even for schedules
	// that isolate a replica for far longer than the keep window; a
	// false verdict means some replica was still catching up (or
	// never did) when the run ended.
	Recovered bool `json:"recovered"`
	// Consistent records the cross-replica consistency verdict over
	// every level.
	Consistent bool `json:"consistent"`
	// Violations sums safety violations across replicas and levels;
	// correct runs report zero.
	Violations uint64 `json:"violations"`
	// Elapsed is the wall-clock cost of the whole experiment.
	Elapsed time.Duration `json:"elapsed"`
	// Error records what ended the run early, if anything.
	Error string `json:"error,omitempty"`
	// Stages digests the per-stage block-lifecycle histograms (verify,
	// vote, qc, commit, execute) merged across honest replicas — where
	// commit latency actually goes.
	Stages map[string]metrics.LatencySummary `json:"stages,omitempty"`
	// ProposerShares is each replica's fraction of the committed chain
	// (index is replica ID minus one) — the chain-quality measurement.
	ProposerShares []float64 `json:"proposerShares,omitempty"`
	// Gini is the Gini coefficient over ProposerShares: 0 for perfect
	// leader equality, approaching 1 as one leader owns the chain.
	Gini float64 `json:"gini"`
}

// fillChainQuality derives the observability digests (stage-breakdown
// summaries, per-proposer shares, Gini) from the merged chain stats —
// shared by the in-process and fleet result paths.
func (r *Result) fillChainQuality(chain metrics.ChainStats) {
	r.Stages = chain.StageSummaries()
	r.ProposerShares = chain.Shares()
	r.Gini = chain.Gini
}

// Validate reports the first problem with the declared experiment.
// Config validation happens at cluster assembly.
func (e *Experiment) Validate() error {
	if err := e.Workload.Validate(); err != nil {
		return err
	}
	if err := e.Faults.Validate(); err != nil {
		return err
	}
	// Events naming replicas outside the cluster would fire as
	// silent no-ops (crashing node 99 of 4 marks nobody).
	for i, ev := range e.Faults {
		for _, id := range ev.Nodes {
			if id < 1 || int(id) > e.Config.N {
				return fmt.Errorf("harness: fault event %d names replica %s outside n=%d", i, id, e.Config.N)
			}
		}
		for id := range ev.Groups {
			if id < 1 || int(id) > e.Config.N {
				return fmt.Errorf("harness: fault event %d partitions replica %s outside n=%d", i, id, e.Config.N)
			}
		}
	}
	switch e.Election {
	case "", ElectionRoundRobin, ElectionHashed:
	default:
		return fmt.Errorf("harness: unknown election mode %q", e.Election)
	}
	if e.Backend != "" {
		known := false
		for _, b := range Backends() {
			if e.Backend == b {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("harness: unknown backend %q (have %s)",
				e.Backend, strings.Join(Backends(), ", "))
		}
	}
	for i, lvl := range e.Measure.Levels {
		if lvl <= 0 {
			return fmt.Errorf("harness: level %d must be positive, have %d", i, lvl)
		}
	}
	for i, rate := range e.Measure.Rates {
		if rate <= 0 {
			return fmt.Errorf("harness: rate %d must be positive, have %v", i, rate)
		}
	}
	if e.Measure.Rate < 0 || e.Measure.Concurrency < 0 {
		return fmt.Errorf("harness: negative load level")
	}
	for i, cs := range e.Measure.Clients {
		if cs.Count < 0 {
			return fmt.Errorf("harness: measure.clients[%d].count must be non-negative, have %d", i, cs.Count)
		}
		if cs.Workload != nil {
			if err := cs.Workload.Validate(); err != nil {
				return fmt.Errorf("harness: measure.clients[%d]: %w", i, err)
			}
		}
	}
	if len(e.Measure.Clients) > 0 && (len(e.Measure.Levels) > 0 || e.Measure.Concurrency > 0) {
		return fmt.Errorf("harness: measure.clients fixes closed-loop concurrency at one in-flight request per client; drop measure.concurrency/measure.levels")
	}
	return nil
}

// fleetSpecs normalizes the plan's client populations: a missing
// Clients section means one client running the experiment workload.
func fleetSpecs(exp Experiment) []ClientSpec {
	if len(exp.Measure.Clients) > 0 {
		return exp.Measure.Clients
	}
	return []ClientSpec{{Count: 1}}
}

// fleetSize counts the clients the normalized populations declare.
func fleetSize(specs []ClientSpec) int {
	total := 0
	for _, cs := range specs {
		if cs.Count <= 0 {
			total++
			continue
		}
		total += cs.Count
	}
	return total
}

// Run executes the experiment and returns its structured result. On
// error the returned Result still carries every point measured before
// the failure, with Error set.
func Run(exp Experiment) (*Result, error) {
	start := time.Now()
	// Consistent stays false until every level has passed its
	// cross-replica consistency check: an errored or never-run
	// experiment must not serialize as a verified-consistent one.
	backend := exp.Backend
	if backend == "" {
		backend = BackendSwitch
	}
	res := &Result{
		Name:     exp.Name,
		Backend:  backend,
		Config:   exp.Config,
		Workload: exp.Workload,
		Faults:   exp.Faults,
		Measure:  exp.Measure,
	}
	fail := func(err error) (*Result, error) {
		res.Error = err.Error()
		res.Elapsed = time.Since(start)
		return res, err
	}
	if err := exp.Validate(); err != nil {
		return fail(err)
	}

	type step struct {
		concurrency int
		rate        float64
	}
	var steps []step
	switch {
	case len(exp.Measure.Levels) > 0:
		for _, lvl := range exp.Measure.Levels {
			steps = append(steps, step{concurrency: lvl})
		}
	case len(exp.Measure.Rates) > 0:
		for _, rate := range exp.Measure.Rates {
			steps = append(steps, step{rate: rate})
		}
	case exp.Measure.Rate > 0:
		steps = []step{{rate: exp.Measure.Rate}}
	default:
		conc := exp.Measure.Concurrency
		if conc == 0 {
			conc = exp.Config.Concurrency
		}
		steps = []step{{concurrency: conc}}
	}

	var best float64
	for _, st := range steps {
		var p Point
		var err error
		if backend == BackendFleet {
			p, err = runFleetStep(exp, st.concurrency, st.rate, res)
		} else {
			p, err = runStep(exp, st.concurrency, st.rate, res)
		}
		if err != nil {
			return fail(err)
		}
		res.Points = append(res.Points, p)
		if exp.Measure.SaturationStop {
			if p.Throughput > best {
				best = p.Throughput
			} else if p.Throughput < 0.9*best && len(res.Points) >= 3 {
				break // clearly past saturation
			}
		}
	}
	res.Consistent = true
	res.Elapsed = time.Since(start)
	return res, nil
}

// runStep executes one load level on a fresh cluster, filling the
// result's whole-run aggregates and returning the window's point.
func runStep(exp Experiment, concurrency int, rate float64, res *Result) (Point, error) {
	var p Point
	cfg := exp.Config
	opts := cluster.Options{
		Backend:       exp.Backend,
		WithStores:    needStores(exp),
		LedgerDir:     exp.LedgerDir,
		DisableLedger: exp.DisableLedger,
	}
	if exp.Election == ElectionHashed {
		opts.Elector = election.NewHashed(cfg.N, cfg.Seed)
	}

	// One epoch anchors both the committed-rate buckets and the fault
	// offsets, so the timeline and the schedule line up exactly.
	epoch := time.Now()
	var series *metrics.TimeSeries
	if exp.Measure.Bucket > 0 {
		series = metrics.NewTimeSeries(epoch, exp.Measure.Bucket)
		opts.CommitSeries = series
	}
	c, err := cluster.New(cfg, opts)
	if err != nil {
		return p, err
	}
	defer c.Stop()
	c.Start()

	// The fault scheduler compiles the declared timeline onto the
	// cluster: condition-model changes on both backends, plus real
	// socket teardown for crashes over TCP.
	stop := make(chan struct{})
	defer close(stop)
	if len(exp.Faults) > 0 {
		go exp.Faults.run(c, epoch, stop, nil)
	}

	// Assemble the benchmark fleet: one client per declared population
	// slot, each with its own deterministically seeded generator so a
	// mixed fleet (readers alongside writers) replays exactly.
	specs := fleetSpecs(exp)
	var clients []*client.Client
	idx := 0
	for _, cs := range specs {
		count := cs.Count
		if count <= 0 {
			count = 1
		}
		wl := exp.Workload
		if cs.Workload != nil {
			wl = *cs.Workload
		}
		for i := 0; i < count; i++ {
			gen, err := wl.New(cfg.PayloadSize, cfg.Seed+int64(idx))
			if err != nil {
				return p, err
			}
			cl, err := c.NewClient()
			if err != nil {
				return p, err
			}
			cl.SetWorkload(gen)
			cl.SetFanout(exp.Measure.Fanout)
			clients = append(clients, cl)
			idx++
		}
	}
	window := exp.Measure.Window
	if window <= 0 {
		window = cfg.Runtime
	}
	perOp := exp.Measure.PerOpTimeout
	if perOp <= 0 {
		perOp = 5 * time.Second
	}
	if rate > 0 {
		p.Offered = rate
		per := rate / float64(len(clients))
		for _, cl := range clients {
			cl.RunOpenLoop(per)
		}
	} else {
		if len(exp.Measure.Clients) > 0 {
			// A declared fleet fixes closed-loop concurrency: one
			// in-flight request per client.
			concurrency = len(clients)
			for _, cl := range clients {
				cl.RunClosedLoop(1, perOp)
			}
		} else {
			clients[0].RunClosedLoop(concurrency, perOp)
		}
		p.Offered = float64(concurrency)
	}

	if exp.Measure.Warmup > 0 {
		time.Sleep(exp.Measure.Warmup)
	}
	startCommitted := make([]uint64, len(clients))
	var startRejected, startRetries uint64
	for i, cl := range clients {
		cl.Latency().Reset()
		startCommitted[i] = cl.Committed()
		startRejected += cl.Rejected()
		startRetries += cl.Retries()
	}
	startPoolRej := poolRejections(c, cfg)
	observer := c.Node(c.Observer())
	startChain := observer.Tracker().Snapshot()
	startMsgs, startBytes, _ := c.NetworkStats()
	begin := time.Now()
	time.Sleep(window)
	elapsed := time.Since(begin)
	endChain := observer.Tracker().Snapshot()
	endMsgs, endBytes, _ := c.NetworkStats()
	merged := &metrics.Latency{}
	var endRejected, endRetries uint64
	minTps, maxTps := math.Inf(1), 0.0
	for i, cl := range clients {
		merged.Merge(cl.Latency())
		endRejected += cl.Rejected()
		endRetries += cl.Retries()
		tps := float64(cl.Committed()-startCommitted[i]) / elapsed.Seconds()
		if tps < minTps {
			minTps = tps
		}
		if tps > maxTps {
			maxTps = tps
		}
	}
	lat := merged.Snapshot()
	chain := c.AggregateChain()

	p.Throughput = float64(endChain.TxCommitted-startChain.TxCommitted) / elapsed.Seconds()
	p.Mean, p.P50, p.P95, p.P99, p.P999 = lat.Mean, lat.P50, lat.P95, lat.P99, lat.P999
	p.Clients = len(clients)
	p.ClientMinTps, p.ClientMaxTps = minTps, maxTps
	if minTps > 0 {
		p.ClientDispersion = maxTps / minTps
	}
	p.Rejected = endRejected - startRejected
	p.Retries = endRetries - startRetries
	p.PoolRejections = poolRejections(c, cfg) - startPoolRej
	p.CGR, p.BI = chain.CGR, chain.BI
	p.Blocks = endChain.BlocksCommitted - startChain.BlocksCommitted
	p.NetMsgs, p.NetBytes = endMsgs-startMsgs, endBytes-startBytes
	p.Pipeline = c.AggregatePipeline()

	res.Chain = chain
	res.fillChainQuality(chain)
	res.Pipeline = p.Pipeline
	msgs, bytes, dropped := c.NetworkStats()
	ts := c.TransportStats()
	res.Network = NetworkStats{
		Msgs: msgs, Bytes: bytes, Dropped: dropped,
		Dials: ts.Dials, Redials: ts.Redials, Accepted: ts.Accepted,
	}
	res.Heights, res.Recovered = recoveryVerdict(c, cfg)
	if cfg.SnapshotInterval > 0 {
		res.SnapshotHeights = make([]uint64, cfg.N)
		for i := 1; i <= cfg.N; i++ {
			res.SnapshotHeights[i-1] = c.Node(types.NodeID(i)).Status().SnapshotHeight
		}
	}
	if series != nil {
		res.Series = series.Rates()
	}
	res.Violations += c.Violations()
	if err := c.ConsistencyCheck(); err != nil {
		return p, err
	}
	if res.Violations != 0 {
		return p, fmt.Errorf("harness: %d safety violations", res.Violations)
	}
	return p, nil
}

// needStores reports whether any declared workload — the experiment's
// or a client population's override — executes against a kvstore, so
// replicas get execution layers whenever some client needs them.
func needStores(exp Experiment) bool {
	if exp.Measure.WithStores || exp.Workload.Stores() {
		return true
	}
	for _, cs := range exp.Measure.Clients {
		if cs.Workload != nil && cs.Workload.Stores() {
			return true
		}
	}
	return false
}

// poolRejections sums the replicas' lifetime mempool rejection
// counters; callers difference two readings to window a delta.
func poolRejections(c *cluster.Cluster, cfg config.Config) uint64 {
	var total uint64
	for i := 1; i <= cfg.N; i++ {
		total += c.Node(types.NodeID(i)).PoolStats().Rejected
	}
	return total
}

// recoveryVerdict snapshots every replica's committed height at the
// end of a level and judges whether the honest ones converged.
func recoveryVerdict(c *cluster.Cluster, cfg config.Config) ([]uint64, bool) {
	heights := make([]uint64, cfg.N)
	for i := 1; i <= cfg.N; i++ {
		heights[i-1] = c.Node(types.NodeID(i)).Status().CommittedHeight
	}
	return heights, recoveredFromHeights(heights, cfg)
}

// recoveredFromHeights judges recovery from the per-replica final
// committed heights (index = replica ID − 1): every honest replica
// must be within one forest keep window of the highest honest height,
// the band the live fetch path covers without deep sync. Fault
// schedules that isolate a replica for longer than the keep window
// only pass this with ledger-backed catch-up working. Shared by the
// in-process backends (which read heights off the cluster) and the
// fleet backend (which collects them over HTTP).
func recoveredFromHeights(heights []uint64, cfg config.Config) bool {
	var maxHonest uint64
	for i, h := range heights {
		if !cfg.IsByzantine(types.NodeID(i+1)) && h > maxHonest {
			maxHonest = h
		}
	}
	slack := uint64(cfg.KeepWindow())
	for i, h := range heights {
		if cfg.IsByzantine(types.NodeID(i + 1)) {
			continue
		}
		if h+slack < maxHonest {
			return false
		}
	}
	return true
}

package bamboo_test

// One testing.B benchmark per table and figure of the paper's
// evaluation (Section VI), plus the ablations DESIGN.md calls out.
// Each benchmark executes its experiment runner once per b.N at a
// small time scale (BAMBOO_BENCH_SCALE overrides, default 0.05 here)
// and prints the paper-style rows to stdout, so
//
//	go test -bench=. -benchmem
//
// both exercises the full harness and emits every reproduced series.
// Paper-scale runs: `go run ./cmd/bamboo-bench -scale 1 all`.

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"github.com/bamboo-bft/bamboo/internal/bench"
)

// benchScale reads the duration scale for testing.B runs.
func benchScale() float64 {
	if v := os.Getenv("BAMBOO_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.05
}

// runExperiment drives one figure runner b.N times.
func runExperiment(b *testing.B, fn func(*bench.Runner) error, shrinkDims bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner(os.Stdout, benchScale(), 1)
		if shrinkDims && benchScale() < 0.2 {
			// Keep the quick default runs tractable on small CI
			// hosts; paper-scale runs sweep the full dimensions.
			r.Ns = []int{4, 8, 16, 32}
			r.ByzLevels = []int{0, 2, 6, 10}
			r.Levels = []int{4, 16, 64, 256}
		}
		if err := fn(r); err != nil {
			b.Fatal(err)
		}
	}
	fmt.Println()
}

func BenchmarkTable2ArrivalVsThroughput(b *testing.B) {
	runExperiment(b, (*bench.Runner).RunTable2, false)
}

func BenchmarkFigure8ModelVsImpl(b *testing.B) {
	runExperiment(b, (*bench.Runner).RunFigure8, true)
}

func BenchmarkFigure9BlockSizes(b *testing.B) {
	runExperiment(b, (*bench.Runner).RunFigure9, true)
}

func BenchmarkFigure10PayloadSizes(b *testing.B) {
	runExperiment(b, (*bench.Runner).RunFigure10, true)
}

func BenchmarkFigure11NetworkDelays(b *testing.B) {
	runExperiment(b, (*bench.Runner).RunFigure11, true)
}

func BenchmarkFigure12Scalability(b *testing.B) {
	runExperiment(b, (*bench.Runner).RunFigure12, true)
}

func BenchmarkFigure13ForkingAttack(b *testing.B) {
	runExperiment(b, (*bench.Runner).RunFigure13, true)
}

func BenchmarkFigure14SilenceAttack(b *testing.B) {
	runExperiment(b, (*bench.Runner).RunFigure14, true)
}

func BenchmarkFigure15Responsiveness(b *testing.B) {
	runExperiment(b, (*bench.Runner).RunFigure15, false)
}

func BenchmarkAblationCrypto(b *testing.B) {
	runExperiment(b, (*bench.Runner).RunAblationCrypto, false)
}

func BenchmarkAblationVoteBroadcast(b *testing.B) {
	runExperiment(b, (*bench.Runner).RunAblationVoteBroadcast, false)
}

func BenchmarkAblationResponsiveness(b *testing.B) {
	runExperiment(b, (*bench.Runner).RunAblationResponsiveness, false)
}

func BenchmarkAblationBatching(b *testing.B) {
	runExperiment(b, (*bench.Runner).RunAblationBatching, false)
}

func BenchmarkAblationClientFanout(b *testing.B) {
	runExperiment(b, (*bench.Runner).RunAblationClientFanout, false)
}

func BenchmarkAblationElection(b *testing.B) {
	runExperiment(b, (*bench.Runner).RunAblationElection, false)
}

func BenchmarkPipelineHotPath(b *testing.B) {
	runExperiment(b, (*bench.Runner).RunPipelineHotPath, false)
}

// Customproto: Bamboo's reason to exist — prototype a new chained-BFT
// protocol by writing only its four safety rules and registering it.
//
// The protocol below, "pipelined-2c", is a two-chain commit variant
// that (unlike 2CHS) broadcasts votes so every replica certifies
// blocks locally, trading messages for forking resilience — a hybrid
// of the 2CHS and Streamlet design points the paper compares. Under
// 60 lines of consensus logic; everything else is the framework.
//
//	go run ./examples/customproto
package main

import (
	"fmt"
	"log"
	"time"

	bamboo "github.com/bamboo-bft/bamboo"
)

// pipelined2c: two-chain commit, vote broadcast, longest-certified
// fork choice through the block forest.
type pipelined2c struct {
	env       bamboo.Env
	highQC    *bamboo.QC
	preferred bamboo.View
	lastVoted bamboo.View
}

func newPipelined2C(env bamboo.Env) bamboo.Rules {
	return &pipelined2c{env: env, highQC: bamboo.GenesisQC()}
}

// Propose extends the highest certified block.
func (p *pipelined2c) Propose(view bamboo.View, payload []bamboo.Transaction) *bamboo.Block {
	return bamboo.BuildBlock(p.env.Self, view, p.highQC, payload)
}

// VoteRule: one vote per view, proposals must extend the lock.
func (p *pipelined2c) VoteRule(b *bamboo.Block, _ *bamboo.TC) bool {
	if b.View <= p.lastVoted || b.QC == nil || b.QC.View < p.preferred {
		return false
	}
	p.lastVoted = b.View
	return true
}

// UpdateState locks on the newly certified block (one-chain lock).
func (p *pipelined2c) UpdateState(qc *bamboo.QC) {
	if qc.View <= p.highQC.View {
		return
	}
	p.highQC = qc
	if qc.View > p.preferred {
		p.preferred = qc.View
	}
}

// CommitRule: certify a block whose parent sits one view below —
// the parent (and its prefix) commits.
func (p *pipelined2c) CommitRule(qc *bamboo.QC) *bamboo.Block {
	b, ok := p.env.Forest.Block(qc.BlockID)
	if !ok {
		return nil
	}
	parent, ok := p.env.Forest.Parent(b.ID())
	if !ok || parent.View+1 != qc.View {
		return nil
	}
	return parent
}

func (p *pipelined2c) HighQC() *bamboo.QC { return p.highQC }

// DurableState / Restore: the crash-critical slice of the state above,
// persisted by the engine's safety WAL before any vote leaves the
// replica. Restore merges monotonically so it composes with replay.
func (p *pipelined2c) DurableState() bamboo.DurableState {
	return bamboo.DurableState{LastVoted: p.lastVoted, Preferred: p.preferred, HighQC: p.highQC}
}

func (p *pipelined2c) Restore(s bamboo.DurableState) {
	if s.LastVoted > p.lastVoted {
		p.lastVoted = s.LastVoted
	}
	if s.Preferred > p.preferred {
		p.preferred = s.Preferred
	}
	if s.HighQC != nil && s.HighQC.View > p.highQC.View {
		p.highQC = s.HighQC.Clone()
	}
}

// Policy: broadcast votes like Streamlet, stay responsive like
// Fast-HotStuff.
func (p *pipelined2c) Policy() bamboo.Policy {
	return bamboo.Policy{BroadcastVote: true, ResponsiveDefault: true}
}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("customproto: %v", err)
	}
}

func run() error {
	if err := bamboo.RegisterProtocol("pipelined-2c", newPipelined2C); err != nil {
		return err
	}
	cfg := bamboo.DefaultConfig()
	cfg.Protocol = "pipelined-2c"
	cfg.BlockSize = 100
	cfg.MemSize = 1 << 15
	cfg.CryptoScheme = "hmac"

	fmt.Println("running custom protocol pipelined-2c for 2 seconds...")
	res, err := bamboo.Run(bamboo.Experiment{
		Name:    "customproto",
		Config:  cfg,
		Measure: bamboo.MeasurePlan{Window: 2 * time.Second, Concurrency: 16},
	})
	if err != nil {
		return err
	}
	p := res.Points[0]
	fmt.Printf("committed blocks: %d   txs: %d\n", res.Chain.BlocksCommitted, res.Chain.TxCommitted)
	fmt.Printf("latency: mean %v p99 %v   BI: %.2f views\n", p.Mean, p.P99, p.BI)
	// Run returns an error for inconsistent runs, so reaching here
	// means the cross-replica consistency check passed.
	fmt.Println("replicas consistent ✓ — a new cBFT protocol in <60 lines of rules")
	return nil
}

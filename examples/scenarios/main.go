// Scenarios: a dissection experiment as ~20 lines of data. Four
// replicas run HotStuff under a zipfian key-value workload while a
// declared timeline splits the cluster into two quorum-less halves
// (total stall), heals the partition (instant recovery), and then has
// a Byzantine node go silent — the kind of scripted adversity that
// used to take a bespoke main() with hand-rolled sleeps. The
// structured result (points, committed-rate timeline, consistency
// verdict) prints as JSON at the end.
//
//	go run ./examples/scenarios
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	bamboo "github.com/bamboo-bft/bamboo"
)

func main() {
	cfg := bamboo.DefaultConfig()
	cfg.Protocol = bamboo.ProtocolHotStuff
	cfg.ApplyProtocolDefaults()
	cfg.CryptoScheme = "hmac"
	cfg.MemSize = 1 << 15
	cfg.ByzNo = 1
	cfg.Strategy = bamboo.StrategySilence
	cfg.StrategyDelay = 4 * time.Second // attacker turns silent here

	exp := bamboo.Experiment{
		Name:     "partition-heal-silence",
		Config:   cfg,
		Workload: bamboo.WorkloadSpec{Kind: bamboo.WorkloadKV, Keys: 512, WriteRatio: 0.5},
		Faults: bamboo.FaultSchedule{
			// A 2/2 split leaves no quorum on either side: the whole
			// cluster stalls until the declared heal.
			bamboo.PartitionAt(1500*time.Millisecond, map[bamboo.NodeID]int{3: 1, 4: 1}),
			bamboo.HealAt(3 * time.Second),
		},
		Measure: bamboo.MeasurePlan{
			Warmup:      500 * time.Millisecond,
			Window:      5 * time.Second,
			Concurrency: 16,
			// Short per-op timeout: workers whose transaction lands on
			// the partitioned replica give up and resubmit quickly, so
			// offered load survives the partition window.
			PerOpTimeout: 500 * time.Millisecond,
			Bucket:       500 * time.Millisecond,
		},
	}

	res, err := bamboo.Run(exp)
	if err != nil {
		log.SetFlags(0)
		log.Fatalf("scenarios: %v", err)
	}
	fmt.Printf("scenario %q: %.0f Tx/s, consistent=%v, %d buckets of committed-rate timeline\n",
		res.Name, res.Points[0].Throughput, res.Consistent, len(res.Series))
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		log.Fatal(err)
	}
}

// Scenarios: a dissection experiment as ~20 lines of data. Five
// replicas run HotStuff under a zipfian key-value workload while a
// declared timeline cuts one replica off from the rest. The remaining
// four keep a quorum and commit right past the forest keep window
// (shrunk to the minimum of 8 here so the gap goes "deep" within a
// couple of seconds) — the exact scenario that used to be this
// reproduction's known limitation: the rejoining replica's ancestors
// were compacted out of every peer's in-memory forest, so it kept
// voting but never committed again. With ledger-backed state sync the
// replica streams the missing range from a peer's persistent ledger,
// verifies every block's certificate, fast-forwards, and rejoins —
// which the result records as Recovered, with the sync counters to
// prove how.
//
//	go run ./examples/scenarios
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	bamboo "github.com/bamboo-bft/bamboo"
)

func main() {
	cfg := bamboo.DefaultConfig()
	cfg.N = 5 // an n that keeps quorum with one replica dark
	cfg.Protocol = bamboo.ProtocolHotStuff
	cfg.ApplyProtocolDefaults()
	cfg.CryptoScheme = "hmac"
	cfg.MemSize = 1 << 15
	cfg.ForestKeep = 8 // minimum window: deep gaps form fast

	exp := bamboo.Experiment{
		Name:     "deep-partition-recovery",
		Config:   cfg,
		Workload: bamboo.WorkloadSpec{Kind: bamboo.WorkloadKV, Keys: 512, WriteRatio: 0.5},
		Faults: bamboo.FaultSchedule{
			// Isolate replica 2 only: the other four keep committing,
			// so the committed chain outruns the keep window while 2
			// is dark — a deep gap, not the quorum-less full stall.
			bamboo.PartitionAt(500*time.Millisecond, map[bamboo.NodeID]int{2: 1}),
			bamboo.HealAt(2500 * time.Millisecond),
		},
		Measure: bamboo.MeasurePlan{
			Warmup:      300 * time.Millisecond,
			Window:      4 * time.Second,
			Concurrency: 16,
			// Short per-op timeout: workers whose transaction lands on
			// the isolated replica give up and resubmit quickly, so
			// offered load survives the partition window.
			PerOpTimeout: 500 * time.Millisecond,
			Bucket:       500 * time.Millisecond,
		},
	}

	res, err := bamboo.Run(exp)
	if err != nil {
		log.SetFlags(0)
		log.Fatalf("scenarios: %v", err)
	}
	fmt.Printf("scenario %q: %.0f Tx/s, consistent=%v, recovered=%v\n",
		res.Name, res.Points[0].Throughput, res.Consistent, res.Recovered)
	fmt.Printf("final heights per replica: %v\n", res.Heights)
	fmt.Printf("deep catch-up: %d ranged requests, %d batches served, %d blocks applied via sync\n",
		res.Pipeline.SyncRequestsSent, res.Pipeline.SyncBatchesServed, res.Pipeline.SyncBlocksApplied)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		log.Fatal(err)
	}
}

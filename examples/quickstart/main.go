// Quickstart: spin up a 4-node HotStuff cluster in one process,
// submit transactions from a closed-loop client for a few seconds,
// and print throughput, latency, and the chain micro-metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	bamboo "github.com/bamboo-bft/bamboo"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("quickstart: %v", err)
	}
}

func run() error {
	cfg := bamboo.DefaultConfig()
	cfg.Protocol = bamboo.ProtocolHotStuff
	cfg.ApplyProtocolDefaults()
	cfg.BlockSize = 400
	cfg.MemSize = 1 << 16
	cfg.Delay = 200 * time.Microsecond // simulate same-datacenter links
	cfg.DelayStd = 50 * time.Microsecond

	c, err := bamboo.NewCluster(cfg, bamboo.ClusterOptions{})
	if err != nil {
		return err
	}
	c.Start()
	defer c.Stop()

	client, err := c.NewClient()
	if err != nil {
		return err
	}
	fmt.Println("running 4-node HotStuff for 3 seconds...")
	client.RunClosedLoop(16, 5*time.Second)
	time.Sleep(3 * time.Second)

	status := c.Node(c.Observer()).Status()
	chain := c.AggregateChain()
	lat := client.Latency().Snapshot()
	fmt.Printf("committed height:  %d blocks (view %d)\n", status.CommittedHeight, status.CurView)
	fmt.Printf("transactions:      %d committed (%.0f Tx/s)\n",
		client.Committed(), float64(client.Committed())/3.0)
	fmt.Printf("client latency:    mean %v  p50 %v  p99 %v\n", lat.Mean, lat.P50, lat.P99)
	fmt.Printf("chain growth rate: %.3f   block interval: %.2f views\n", chain.CGR, chain.BI)

	if err := c.ConsistencyCheck(); err != nil {
		return fmt.Errorf("replicas diverged: %w", err)
	}
	fmt.Println("all replicas agree on the committed chain ✓")
	return nil
}

// Quickstart: declare a 4-node HotStuff experiment, run it for a few
// seconds, and print throughput, latency, and the chain micro-metrics
// from the structured result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	bamboo "github.com/bamboo-bft/bamboo"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("quickstart: %v", err)
	}
}

func run() error {
	cfg := bamboo.DefaultConfig()
	cfg.Protocol = bamboo.ProtocolHotStuff
	cfg.ApplyProtocolDefaults()
	cfg.BlockSize = 400
	cfg.MemSize = 1 << 16
	cfg.Delay = 200 * time.Microsecond // simulate same-datacenter links
	cfg.DelayStd = 50 * time.Microsecond

	fmt.Println("running 4-node HotStuff for 3 seconds...")
	res, err := bamboo.Run(bamboo.Experiment{
		Name:    "quickstart",
		Config:  cfg,
		Measure: bamboo.MeasurePlan{Window: 3 * time.Second, Concurrency: 16},
	})
	if err != nil {
		return err
	}

	p := res.Points[0]
	fmt.Printf("throughput:        %.0f Tx/s over %d committed blocks\n", p.Throughput, p.Blocks)
	fmt.Printf("client latency:    mean %v  p50 %v  p99 %v\n", p.Mean, p.P50, p.P99)
	fmt.Printf("chain growth rate: %.3f   block interval: %.2f views\n", p.CGR, p.BI)
	fmt.Printf("network:           %d messages, %d bytes\n", res.Network.Msgs, res.Network.Bytes)

	// Run returns an error for inconsistent runs, so reaching here
	// means the cross-replica consistency check passed.
	fmt.Println("all replicas agree on the committed chain ✓")
	return nil
}

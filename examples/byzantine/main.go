// Byzantine: the Section IV story, live. Run HotStuff and Streamlet
// side by side, each with one forking attacker among eight nodes, and
// watch the chain growth rate: the attacker overwrites uncommitted
// HotStuff blocks (CGR < 1) while Streamlet's broadcast votes and
// longest-chain rule leave it untouched (CGR = 1). Safety holds for
// both — forks only ever waste work.
//
//	go run ./examples/byzantine
package main

import (
	"fmt"
	"log"
	"time"

	bamboo "github.com/bamboo-bft/bamboo"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("byzantine: %v", err)
	}
}

func run() error {
	fmt.Println("one forking attacker among 8 nodes, 3-second runs")
	fmt.Printf("%-12s %-8s %-8s %-10s %-10s\n", "protocol", "CGR", "BI", "committed", "safety")
	for _, proto := range []string{bamboo.ProtocolHotStuff, bamboo.ProtocolStreamlet} {
		cgr, bi, committed, err := attackRun(proto)
		if err != nil {
			return fmt.Errorf("%s: %w", proto, err)
		}
		fmt.Printf("%-12s %-8.3f %-8.2f %-10d %s\n", proto, cgr, bi, committed, "ok ✓")
	}
	fmt.Println("\nHotStuff loses uncommitted blocks to the fork (CGR < 1);")
	fmt.Println("Streamlet is immune: honest replicas only vote on the longest")
	fmt.Println("notarized chain, so the attacker's stale-parent block starves.")
	return nil
}

func attackRun(proto string) (cgr, bi float64, committed uint64, err error) {
	cfg := bamboo.DefaultConfig()
	cfg.Protocol = proto
	cfg.ApplyProtocolDefaults()
	cfg.N = 8
	cfg.ByzNo = 1
	cfg.Strategy = bamboo.StrategyForking
	cfg.BlockSize = 100
	cfg.MemSize = 1 << 15
	cfg.CryptoScheme = "hmac"
	cfg.Timeout = 150 * time.Millisecond

	res, err := bamboo.Run(bamboo.Experiment{
		Name:   "byzantine-" + proto,
		Config: cfg,
		Measure: bamboo.MeasurePlan{
			Window:       3 * time.Second,
			Concurrency:  16,
			PerOpTimeout: 2 * time.Second,
		},
	})
	if err != nil {
		// Run fails on safety violations and inconsistency, so a nil
		// error means the forking attack never broke agreement.
		return 0, 0, 0, err
	}
	return res.Chain.CGR, res.Chain.BI, res.Chain.BlocksCommitted, nil
}

// KVBank: the paper's motivating payments workload. A replicated
// in-memory bank runs over two-chain HotStuff: accounts are seeded,
// then concurrent clients issue transfers as SET commands through
// consensus; at the end every replica's store must agree and the
// total balance must be conserved.
//
//	go run ./examples/kvbank
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"time"

	bamboo "github.com/bamboo-bft/bamboo"
	"github.com/bamboo-bft/bamboo/internal/kvstore"
	"github.com/bamboo-bft/bamboo/internal/types"
)

const (
	accounts       = 16
	initialBalance = 1000
	transfers      = 300
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("kvbank: %v", err)
	}
}

// account keys are "acct00".."acct15"; balances are big-endian uint64.
func key(i int) string { return fmt.Sprintf("acct%02d", i) }

func encodeBalance(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

func run() error {
	cfg := bamboo.DefaultConfig()
	cfg.Protocol = bamboo.ProtocolTwoChainHS
	cfg.ApplyProtocolDefaults()
	cfg.BlockSize = 50
	cfg.MemSize = 1 << 14
	c, err := bamboo.NewCluster(cfg, bamboo.ClusterOptions{WithStores: true})
	if err != nil {
		return err
	}
	c.Start()
	defer c.Stop()

	// The bank's ledger state lives in the replicated KV store; the
	// "teller" below reads one replica's store to compute transfer
	// outcomes and submits the resulting balances through consensus.
	// (A production system would execute transfers inside the state
	// machine; protocol-level evaluation is the point here, as in the
	// paper's in-memory KV setup.)
	node := c.Node(c.Observer())
	store := c.Store(c.Observer())

	submit := func(cmd []byte) {
		node.Submit(types.Transaction{
			ID:             types.TxID{Client: 77, Seq: nextSeq()},
			Command:        cmd,
			SubmitUnixNano: time.Now().UnixNano(),
		})
	}

	fmt.Printf("seeding %d accounts with %d each...\n", accounts, initialBalance)
	for i := 0; i < accounts; i++ {
		submit(kvstore.EncodeSet(key(i), encodeBalance(initialBalance), 0))
	}
	waitApplied(store, accounts)

	fmt.Printf("running %d transfers...\n", transfers)
	rng := rand.New(rand.NewSource(7))
	done := 0
	for done < transfers {
		from, to := rng.Intn(accounts), rng.Intn(accounts)
		if from == to {
			continue
		}
		amount := uint64(rng.Intn(50) + 1)
		fb := balance(store, key(from))
		if fb < amount {
			continue
		}
		tb := balance(store, key(to))
		// Two balance writes ordered by consensus; both land in the
		// same or later blocks, applied identically on every replica.
		submit(kvstore.EncodeSet(key(from), encodeBalance(fb-amount), 0))
		submit(kvstore.EncodeSet(key(to), encodeBalance(tb+amount), 0))
		waitApplied(store, uint64(accounts+2*(done+1)))
		done++
	}

	// Audit: conservation of money on every replica, identical state.
	want := uint64(accounts * initialBalance)
	for i := 1; i <= cfg.N; i++ {
		s := c.Store(bamboo.NodeID(i))
		// Replicas may trail the teller's store by a block; wait.
		waitApplied(s, store.Applied())
		var total uint64
		for a := 0; a < accounts; a++ {
			total += balance(s, key(a))
		}
		if total != want {
			return fmt.Errorf("replica %d: total %d, want %d — money not conserved", i, total, want)
		}
	}
	if err := c.ConsistencyCheck(); err != nil {
		return err
	}
	fmt.Printf("done: %d transfers, %d total balance conserved on all %d replicas ✓\n",
		transfers, want, cfg.N)
	return nil
}

var seq uint64

func nextSeq() uint64 { seq++; return seq }

// balance reads an account balance from a store.
func balance(s *bamboo.Store, k string) uint64 {
	v, ok := s.Get(k)
	if !ok || len(v) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(v)
}

// waitApplied blocks until the store has applied at least n commands.
func waitApplied(s *bamboo.Store, n uint64) {
	for s.Applied() < n {
		time.Sleep(time.Millisecond)
	}
}

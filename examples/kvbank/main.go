// KVBank: the paper's motivating payments workload. A replicated
// in-memory bank runs over two-chain HotStuff: the kvbank workload
// generator streams transfers through consensus; transfers execute
// atomically inside every replica's state machine, materializing
// accounts at an implicit initial balance on first touch (so there is
// no seeding phase to lose), with insufficient funds applying as
// no-ops. At the end every store must agree and the total balance
// must be conserved — under any subset and ordering of commits.
//
//	go run ./examples/kvbank
package main

import (
	"fmt"
	"log"
	"time"

	bamboo "github.com/bamboo-bft/bamboo"
)

const (
	accounts       = 16
	initialBalance = 1000
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("kvbank: %v", err)
	}
}

func run() error {
	cfg := bamboo.DefaultConfig()
	cfg.Protocol = bamboo.ProtocolTwoChainHS
	cfg.ApplyProtocolDefaults()
	cfg.BlockSize = 50
	cfg.MemSize = 1 << 14

	spec := bamboo.WorkloadSpec{
		Kind:           bamboo.WorkloadKVBank,
		Accounts:       accounts,
		InitialBalance: initialBalance,
		MaxTransfer:    50,
	}
	gen, err := spec.New(cfg.PayloadSize, cfg.Seed)
	if err != nil {
		return err
	}

	// The audit below reads every replica's store, so this example
	// drives the cluster API directly and plugs the workload into the
	// benchmark client.
	c, err := bamboo.NewCluster(cfg, bamboo.ClusterOptions{WithStores: true})
	if err != nil {
		return err
	}
	c.Start()
	defer c.Stop()
	client, err := c.NewClient()
	if err != nil {
		return err
	}
	client.SetWorkload(gen)

	fmt.Printf("streaming transfers over %d accounts for 3 seconds...\n", accounts)
	client.RunClosedLoop(8, 2*time.Second)
	time.Sleep(3 * time.Second)
	committed := client.Committed()

	// Quiesce before auditing: stop the load, then wait for the
	// observer's applied count to stabilize (in-flight blocks drain)
	// so the balance reads are not torn by concurrent transfers.
	client.Stop()
	observer := c.Store(c.Observer())
	settled := observer.Applied()
	for stable := 0; stable < 3; {
		time.Sleep(50 * time.Millisecond)
		if n := observer.Applied(); n == settled {
			stable++
		} else {
			settled, stable = n, 0
		}
	}

	// Audit: conservation of money on every replica, identical state.
	// Untouched accounts count at the implicit initial balance;
	// replicas may trail the observer by a block, so wait for them.
	// A straggler block applying mid-sum would tear it, so each sum
	// is retried until the replica's applied count is unchanged
	// across the read.
	want := uint64(accounts * initialBalance)
	for i := 1; i <= cfg.N; i++ {
		s := c.Store(bamboo.NodeID(i))
		waitApplied(s, settled)
		var total uint64
		for {
			before := s.Applied()
			total = 0
			for a := 0; a < accounts; a++ {
				total += s.BalanceOr(bamboo.WorkloadAccount(a), initialBalance)
			}
			if s.Applied() == before {
				break
			}
		}
		if total != want {
			return fmt.Errorf("replica %d: total %d, want %d — money not conserved", i, total, want)
		}
	}
	if err := c.ConsistencyCheck(); err != nil {
		return err
	}
	fmt.Printf("done: %d committed transactions, %d total balance conserved on all %d replicas ✓\n",
		committed, want, cfg.N)
	return nil
}

// waitApplied blocks until the store has applied at least n commands.
func waitApplied(s *bamboo.Store, n uint64) {
	for s.Applied() < n {
		time.Sleep(time.Millisecond)
	}
}

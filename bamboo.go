// Package bamboo is the public face of the Bamboo chained-BFT
// prototyping and evaluation framework, a Go reproduction of
// "Dissecting the Performance of Chained-BFT" (ICDCS 2021).
//
// Bamboo lets you assemble an in-process (or TCP) cluster running any
// of the built-in protocols — HotStuff, two-chain HotStuff, Streamlet,
// Fast-HotStuff, and the OHS baseline — or a protocol you define by
// implementing the four safety rules (Proposing, Voting, State
// Updating, Commit) and registering it under a name:
//
//	cfg := bamboo.DefaultConfig()
//	cfg.Protocol = bamboo.ProtocolHotStuff
//	cfg.ApplyProtocolDefaults()
//	c, err := bamboo.NewCluster(cfg, bamboo.ClusterOptions{})
//	...
//	c.Start()
//	defer c.Stop()
//	client, err := c.NewClient()
//	client.SubmitAndWait(time.Second)
//
// Above the cluster sits the declarative experiment layer — the
// framework-as-harness the paper is about. An Experiment is data: a
// Config, a Workload spec (padded no-op, zipfian key-value mix, or
// kvbank transfers), a timed fault schedule (PartitionAt, HealAt,
// CrashAt, RestartAt, FluctuateAt, SetDelayAt), and a measurement
// plan. Run executes it and returns a structured, JSON-marshalable
// Result:
//
//	res, err := bamboo.Run(bamboo.Experiment{
//		Config:   cfg,
//		Workload: bamboo.WorkloadSpec{Kind: bamboo.WorkloadKV, WriteRatio: 0.5},
//		Faults: bamboo.FaultSchedule{
//			bamboo.PartitionAt(time.Second, map[bamboo.NodeID]int{1: 1, 2: 1}),
//			bamboo.HealAt(2 * time.Second),
//		},
//		Measure: bamboo.MeasurePlan{Warmup: time.Second, Window: 2 * time.Second},
//	})
//
// Fault schedules may isolate replicas for longer than the in-memory
// forest keep window: every replica persists its committed chain to a
// ledger by default, and a rejoining replica streams the gap from a
// peer's ledger as verified certificate-chained batches (state sync),
// then re-commits. Result.Recovered and Result.Heights record the
// outcome; Node status and the pipeline counters expose progress.
//
// The types below alias the implementation packages so downstream
// code can name every value the API returns.
package bamboo

import (
	"time"

	"github.com/bamboo-bft/bamboo/internal/client"
	"github.com/bamboo-bft/bamboo/internal/cluster"
	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/core"
	"github.com/bamboo-bft/bamboo/internal/forest"
	"github.com/bamboo-bft/bamboo/internal/harness"
	"github.com/bamboo-bft/bamboo/internal/kvstore"
	"github.com/bamboo-bft/bamboo/internal/ledger"
	"github.com/bamboo-bft/bamboo/internal/metrics"
	"github.com/bamboo-bft/bamboo/internal/model"
	"github.com/bamboo-bft/bamboo/internal/protocol"
	"github.com/bamboo-bft/bamboo/internal/safety"
	"github.com/bamboo-bft/bamboo/internal/types"
	"github.com/bamboo-bft/bamboo/internal/workload"
)

// Core configuration and deployment types.
type (
	// Config is the run configuration (Table I of the paper).
	Config = config.Config
	// Cluster is an in-process deployment of N replicas.
	Cluster = cluster.Cluster
	// ClusterOptions tunes cluster assembly.
	ClusterOptions = cluster.Options
	// Client is a benchmark client (closed- or open-loop).
	Client = client.Client
	// Node is a single replica.
	Node = core.Node
	// NodeStatus is a replica's published snapshot.
	NodeStatus = core.Status
	// ChainStats carries the chain micro-metrics (CGR, BI).
	ChainStats = metrics.ChainStats
	// PipelineStats carries the per-stage hot-path instrumentation:
	// verify-queue wait, apply lag, and the digest/batch counters of
	// the pipelined replica (Config.DigestProposals, AsyncVerify,
	// AsyncCommit).
	PipelineStats = metrics.PipelineStats
	// Store is the in-memory key-value execution layer.
	Store = kvstore.Store
	// Ledger is the append-only persistent store of committed blocks.
	// Clusters give every replica one by default (it is what deep
	// state sync serves catch-up ranges from); set a stable location
	// with ClusterOptions.LedgerDir or opt out with
	// ClusterOptions.DisableLedger.
	Ledger = ledger.Ledger
)

// ReplayLedger streams a persisted chain in commit order, verifying
// height contiguity and parent links.
func ReplayLedger(path string, fn func(b *Block, height uint64) error) error {
	return ledger.Replay(path, fn)
}

// Protocol-authoring types: implement Rules against Env (the block
// forest plus identity) and register with RegisterProtocol.
type (
	// Rules is the four-rule safety interface a protocol implements.
	Rules = safety.Rules
	// Env hands a protocol its per-replica environment.
	Env = safety.Env
	// Policy declares a protocol's design choices (vote routing,
	// echoing, responsiveness, client path).
	Policy = safety.Policy
	// DurableState is the crash-critical voting state a protocol
	// reports for (and restores from) the safety WAL.
	DurableState = safety.DurableState
	// Forest is the block-forest API available to protocols.
	Forest = forest.Forest
)

// Wire-level data types protocols and applications touch.
type (
	// Block is the unit of replication.
	Block = types.Block
	// QC is a quorum certificate.
	QC = types.QC
	// TC is a timeout certificate.
	TC = types.TC
	// View is a protocol round.
	View = types.View
	// NodeID identifies a replica.
	NodeID = types.NodeID
	// Hash is a block identifier.
	Hash = types.Hash
	// Transaction is a client command.
	Transaction = types.Transaction
	// TxID identifies a transaction.
	TxID = types.TxID
)

// ModelParams parameterizes the Section V analytic performance model.
type ModelParams = model.Params

// Declarative experiment types: a scenario is data, executed by Run.
type (
	// Experiment declares one complete scenario: configuration,
	// workload, fault schedule, and measurement plan.
	Experiment = harness.Experiment
	// MeasurePlan declares how a scenario is loaded and measured.
	MeasurePlan = harness.MeasurePlan
	// FaultEvent is one timed entry of a fault schedule.
	FaultEvent = harness.FaultEvent
	// FaultSchedule is an ordered set of timed fault events.
	FaultSchedule = harness.FaultSchedule
	// Result is the structured, JSON-marshalable outcome of Run.
	Result = harness.Result
	// ResultPoint is one measured datum of a result.
	ResultPoint = harness.Point
	// NetworkStats totals the switch counters of a run.
	NetworkStats = harness.NetworkStats
	// WorkloadSpec declares a transaction generator as data.
	WorkloadSpec = workload.Spec
	// WorkloadGenerator produces benchmark transaction commands;
	// install a custom one with Client.SetWorkload.
	WorkloadGenerator = workload.Generator
)

// Workload kinds for WorkloadSpec.Kind.
const (
	WorkloadNoop   = workload.KindNoop
	WorkloadKV     = workload.KindKV
	WorkloadKVBank = workload.KindKVBank
)

// WorkloadAccount returns the store key of kvbank account i.
func WorkloadAccount(i int) string { return workload.Account(i) }

// Leader-election modes for Experiment.Election.
const (
	ElectionRoundRobin = harness.ElectionRoundRobin
	ElectionHashed     = harness.ElectionHashed
)

// Deployment backends for Experiment.Backend: the in-process channel
// switch (default), one real loopback TCP listener per replica, or one
// bamboo-server OS process per replica. The declared fault schedule
// means the same thing on all of them.
const (
	BackendSwitch = harness.BackendSwitch
	BackendTCP    = harness.BackendTCP
	BackendFleet  = harness.BackendFleet
)

// Backends lists the registered deployment backends.
func Backends() []string { return harness.Backends() }

// Run executes a declared experiment and returns its structured
// result — the framework's evaluation entry point.
func Run(exp Experiment) (*Result, error) { return harness.Run(exp) }

// LoadExperiment reads a declared scenario from a JSON file,
// validating it (unknown fields rejected) before it can run — the
// `bamboo-bench -run scenario.json` loader.
func LoadExperiment(path string) (Experiment, error) { return harness.LoadExperiment(path) }

// Fault-schedule constructors: each returns one timed event whose
// offset is measured from cluster start.
func PartitionAt(at time.Duration, groups map[NodeID]int) FaultEvent {
	return harness.PartitionAt(at, groups)
}

// HealAt removes every partition at offset at.
func HealAt(at time.Duration) FaultEvent { return harness.HealAt(at) }

// CrashAt silences the named replicas at offset at.
func CrashAt(at time.Duration, nodes ...NodeID) FaultEvent {
	return harness.CrashAt(at, nodes...)
}

// RestartAt undoes a crash of the named replicas at offset at.
func RestartAt(at time.Duration, nodes ...NodeID) FaultEvent {
	return harness.RestartAt(at, nodes...)
}

// FluctuateAt replaces the base link delay with Uniform(min, max) for
// dur starting at offset at.
func FluctuateAt(at, dur, min, max time.Duration) FaultEvent {
	return harness.FluctuateAt(at, dur, min, max)
}

// SetDelayAt adds Normal(mean, std) delay to every message the named
// replicas send, from offset at.
func SetDelayAt(at time.Duration, mean, std time.Duration, nodes ...NodeID) FaultEvent {
	return harness.SetDelayAt(at, mean, std, nodes...)
}

// SetDropRateAt makes every message independently lost with
// probability rate from offset at.
func SetDropRateAt(at time.Duration, rate float64) FaultEvent {
	return harness.SetDropRateAt(at, rate)
}

// Built-in protocol names for Config.Protocol.
const (
	ProtocolHotStuff     = config.ProtocolHotStuff
	ProtocolTwoChainHS   = config.ProtocolTwoChainHS
	ProtocolStreamlet    = config.ProtocolStreamlet
	ProtocolFastHotStuff = config.ProtocolFastHotStuff
	ProtocolOHS          = config.ProtocolOHS
)

// Byzantine strategy names for Config.Strategy.
const (
	StrategySilence    = config.StrategySilence
	StrategyForking    = config.StrategyForking
	StrategyEquivocate = config.StrategyEquivocate
)

// DefaultConfig returns the paper's Table I defaults.
func DefaultConfig() Config { return config.Default() }

// NewCluster assembles an in-process cluster (replicas are built but
// not started; call Start).
func NewCluster(cfg Config, opts ClusterOptions) (*Cluster, error) {
	return cluster.New(cfg, opts)
}

// RegisterProtocol adds a custom chained-BFT protocol under a name
// usable in Config.Protocol — the framework's prototyping entry point.
func RegisterProtocol(name string, factory func(Env) Rules) error {
	return protocol.Register(name, factory)
}

// Protocols lists every registered protocol name.
func Protocols() []string { return protocol.Names() }

// BuildBlock assembles a standard proposal extending the block that qc
// certifies — the helper honest Proposing rules use.
func BuildBlock(self NodeID, view View, qc *QC, payload []Transaction) *Block {
	return safety.BuildBlock(self, view, qc, payload)
}

// GenesisQC returns the certificate every chain starts from.
func GenesisQC() *QC { return types.GenesisQC() }

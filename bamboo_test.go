package bamboo_test

import (
	"encoding/json"
	"testing"
	"time"

	bamboo "github.com/bamboo-bft/bamboo"
)

// TestQuickstartFlow exercises the README's quickstart path through
// the public API only.
func TestQuickstartFlow(t *testing.T) {
	cfg := bamboo.DefaultConfig()
	cfg.Protocol = bamboo.ProtocolHotStuff
	cfg.ApplyProtocolDefaults()
	cfg.CryptoScheme = "hmac"
	cfg.BlockSize = 10
	c, err := bamboo.NewCluster(cfg, bamboo.ClusterOptions{WithStores: true})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if !cl.SubmitAndWait(5 * time.Second) {
			t.Fatalf("transaction %d did not commit", i)
		}
	}
	if err := c.ConsistencyCheck(); err != nil {
		t.Fatal(err)
	}
	if c.AggregateChain().TxCommitted == 0 {
		t.Fatal("no committed transactions in aggregate stats")
	}
}

// onechain is a deliberately unsafe toy protocol used to prove the
// registration path: it commits as soon as a block is certified
// (a "one-chain" rule). Fine on a happy path, unsound under faults —
// exactly the kind of prototype Bamboo exists to evaluate.
type onechain struct {
	env       bamboo.Env
	highQC    *bamboo.QC
	lastVoted bamboo.View
}

func newOnechain(env bamboo.Env) bamboo.Rules {
	return &onechain{env: env, highQC: bamboo.GenesisQC()}
}

func (o *onechain) Propose(view bamboo.View, payload []bamboo.Transaction) *bamboo.Block {
	return bamboo.BuildBlock(o.env.Self, view, o.highQC, payload)
}

func (o *onechain) VoteRule(b *bamboo.Block, _ *bamboo.TC) bool {
	if b.View <= o.lastVoted || b.QC == nil || b.QC.View < o.highQC.View {
		return false
	}
	o.lastVoted = b.View
	return true
}

func (o *onechain) UpdateState(qc *bamboo.QC) {
	if qc.View > o.highQC.View {
		o.highQC = qc
	}
}

func (o *onechain) CommitRule(qc *bamboo.QC) *bamboo.Block {
	b, ok := o.env.Forest.Block(qc.BlockID)
	if !ok {
		return nil
	}
	return b
}

func (o *onechain) HighQC() *bamboo.QC { return o.highQC }

func (o *onechain) DurableState() bamboo.DurableState {
	return bamboo.DurableState{LastVoted: o.lastVoted, HighQC: o.highQC}
}

func (o *onechain) Restore(s bamboo.DurableState) {
	if s.LastVoted > o.lastVoted {
		o.lastVoted = s.LastVoted
	}
	if s.HighQC != nil && s.HighQC.View > o.highQC.View {
		o.highQC = s.HighQC.Clone()
	}
}

func (o *onechain) Policy() bamboo.Policy {
	return bamboo.Policy{ResponsiveDefault: true}
}

// TestCustomProtocolRegistration runs the toy one-chain protocol end
// to end through the registry.
func TestCustomProtocolRegistration(t *testing.T) {
	if err := bamboo.RegisterProtocol("onechain-test", newOnechain); err != nil {
		t.Fatal(err)
	}
	if err := bamboo.RegisterProtocol("onechain-test", newOnechain); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	found := false
	for _, name := range bamboo.Protocols() {
		if name == "onechain-test" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered protocol not listed")
	}

	cfg := bamboo.DefaultConfig()
	cfg.Protocol = "onechain-test"
	cfg.CryptoScheme = "hmac"
	cfg.BlockSize = 10
	c, err := bamboo.NewCluster(cfg, bamboo.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !cl.SubmitAndWait(5 * time.Second) {
			t.Fatalf("custom-protocol transaction %d did not commit", i)
		}
	}
	if err := c.ConsistencyCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestUnknownProtocolRejected: the registry is the authority.
func TestUnknownProtocolRejected(t *testing.T) {
	cfg := bamboo.DefaultConfig()
	cfg.Protocol = "pbft"
	if _, err := bamboo.NewCluster(cfg, bamboo.ClusterOptions{}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

// TestExperimentFlow exercises the README's declarative path through
// the public API only: a crash→restart timeline over the kvbank
// workload, with a structured result that survives a JSON round trip.
func TestExperimentFlow(t *testing.T) {
	cfg := bamboo.DefaultConfig()
	cfg.Protocol = bamboo.ProtocolHotStuff
	cfg.ApplyProtocolDefaults()
	cfg.N = 5
	cfg.CryptoScheme = "hmac"
	cfg.BlockSize = 20
	cfg.MemSize = 10000

	res, err := bamboo.Run(bamboo.Experiment{
		Name:     "api-flow",
		Config:   cfg,
		Workload: bamboo.WorkloadSpec{Kind: bamboo.WorkloadKVBank, Accounts: 8},
		Faults: bamboo.FaultSchedule{
			// Crash a follower, not node 5: the harness measures
			// throughput at the highest-ID (observer) replica.
			bamboo.CrashAt(300*time.Millisecond, 2),
			bamboo.RestartAt(700*time.Millisecond, 2),
		},
		Measure: bamboo.MeasurePlan{
			Warmup:       100 * time.Millisecond,
			Window:       1200 * time.Millisecond,
			Concurrency:  8,
			PerOpTimeout: 400 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent || res.Violations != 0 {
		t.Fatalf("inconsistent run: %+v", res)
	}
	if res.Points[0].Throughput <= 0 {
		t.Fatal("no throughput measured")
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back bamboo.Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "api-flow" || len(back.Points) != 1 {
		t.Fatalf("result did not round-trip: %+v", back)
	}
}

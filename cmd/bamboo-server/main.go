// Command bamboo-server runs one Bamboo replica for multi-process
// deployments: consensus over TCP with the peers listed in the
// configuration file, plus the RESTful client API on its own port.
//
// Usage:
//
//	bamboo-server -config bamboo.json -id 1 -http :8080
//
// The configuration file follows Table I of the paper (see
// internal/config); the "address" map lists every replica's consensus
// endpoint.
//
// Besides the client API, the HTTP port carries the fleet control
// plane (see internal/httpapi): /readyz readiness, POST
// /admin/conditions for remote fault injection into the server's
// conditioned transport, GET /admin/result for the node-local slice of
// a benchmark result, and /admin/snapshot/{manifest,chunk} for
// out-of-band snapshot transfer. SIGTERM drains the API gracefully; a
// second signal forces exit; the process exits non-zero if it observed
// a safety violation.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"github.com/bamboo-bft/bamboo/internal/config"
	"github.com/bamboo-bft/bamboo/internal/core"
	"github.com/bamboo-bft/bamboo/internal/crypto"
	"github.com/bamboo-bft/bamboo/internal/httpapi"
	"github.com/bamboo-bft/bamboo/internal/kvstore"
	"github.com/bamboo-bft/bamboo/internal/ledger"
	"github.com/bamboo-bft/bamboo/internal/network"
	"github.com/bamboo-bft/bamboo/internal/protocol"
	"github.com/bamboo-bft/bamboo/internal/snapshot"
	"github.com/bamboo-bft/bamboo/internal/types"
	"github.com/bamboo-bft/bamboo/internal/wal"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("bamboo-server: %v", err)
	}
}

func run() error {
	var (
		configPath = flag.String("config", "bamboo.json", "path to the JSON run configuration")
		id         = flag.Uint("id", 0, "this replica's node ID (key into the address map)")
		httpAddr   = flag.String("http", "", "address for the RESTful client API (empty disables)")
		ledgerPath = flag.String("ledger", "",
			"ledger file for the committed chain (default bamboo-replica-<id>.ledger; \"none\" disables persistence and with it deep catch-up serving and restart replay). A restarted replica rejoining the SAME chain reuses its file: on startup it replays snapshot + ledger into forest and state machine before joining, then state-syncs only the tail it missed while down. A fresh deployment needs a fresh path (blocks from another chain are never served, but they occupy the file)")
		snapPath = flag.String("snapshots", "",
			"snapshot file for periodic state snapshots (default <ledger>.snap; only used with a ledger). Snapshots are taken every snapshotInterval committed heights per the configuration, compact the ledger prefix they cover, serve O(state) catch-up to deeply lagging peers, and seed restart replay")
		walPath = flag.String("wal", "",
			"safety WAL file (default <ledger>.wal; only used with a ledger). Records last-voted view, lock, highQC, and current view, fsync'd before any vote or timeout leaves the node, so a SIGKILLed replica can never vote twice in one view after restart — and restart replay re-commits the full ledger with no holdback")
		traceSpans = flag.Int("trace-spans", 0,
			"block-lifecycle trace ring capacity in spans (0 = default 4096). The tracer is always on; this bounds how much history GET /debug/trace exports. The event ring scales 4x this")
	)
	flag.Parse()
	if *id == 0 {
		return fmt.Errorf("-id is required")
	}
	cfg, err := config.Load(*configPath)
	if err != nil {
		return err
	}
	if len(cfg.Addrs) == 0 {
		return fmt.Errorf("configuration has no replica addresses")
	}
	self := types.NodeID(*id)
	if _, ok := cfg.Addrs[self]; !ok {
		return fmt.Errorf("node %d has no address in the configuration", *id)
	}

	factory, err := protocol.Factory(cfg.Protocol)
	if err != nil {
		return err
	}
	fullScheme, err := crypto.NewScheme(cfg.CryptoScheme, cfg.N, cfg.Seed)
	if err != nil {
		return err
	}
	scheme := crypto.Scheme(fullScheme)
	if ed, ok := fullScheme.(*crypto.Ed25519); ok {
		// Hold only our own private key in this process.
		scheme = ed.Restrict(self)
	}
	transport, err := network.NewTCP(self, cfg.Addrs)
	if err != nil {
		return err
	}
	// Wrap the raw transport in the same condition model the
	// in-process backends use, judged at this sender. Out of the box
	// it only applies the configured base delay/bandwidth (none by
	// default); its real purpose is remote fault injection — a fleet
	// supervisor pushes partitions, delays, and loss onto the running
	// process through POST /admin/conditions.
	replicas := make([]types.NodeID, 0, len(cfg.Addrs))
	for rid := range cfg.Addrs {
		replicas = append(replicas, rid)
	}
	sort.Slice(replicas, func(i, j int) bool { return replicas[i] < replicas[j] })
	cond := network.NewConditions(cfg.Seed)
	cond.SetBaseDelay(cfg.Delay, cfg.DelayStd)
	if cfg.Bandwidth > 0 {
		cond.SetBandwidth(cfg.Bandwidth)
	}
	shim := network.Condition(transport, cond, replicas)
	// Persist the committed chain by default: the ledger is both the
	// crash-recovery record and what this replica serves deep
	// catch-up ranges from when a peer falls past the keep window.
	// The snapshot store rides along: periodic state snapshots
	// compact the ledger, serve O(state) catch-up, and make restart
	// replay O(gap) instead of O(chain).
	var led *ledger.Ledger
	var snaps *snapshot.Store
	var safetyWAL *wal.WAL
	if *ledgerPath != "none" {
		path := *ledgerPath
		if path == "" {
			path = fmt.Sprintf("bamboo-replica-%d.ledger", *id)
		}
		// Unbuffered, deliberately: a server's crash story is the
		// process dying (SIGKILL from a supervisor, OOM), and surviving
		// that only needs each record written to the kernel — which
		// the buffered ledger withholds for up to 64KiB. Page-cache
		// durability costs one write syscall per commit and makes
		// restart replay reflect every height the replica reported
		// committed. (Machine-crash durability would need fsync and is
		// a different trade; see ROADMAP.)
		led, err = ledger.Open(path)
		if err != nil {
			return err
		}
		defer func() { _ = led.Close() }()
		sp := *snapPath
		if sp == "" {
			sp = path + ".snap"
		}
		snaps, err = snapshot.OpenStore(sp)
		if err != nil {
			return err
		}
		// Fsync'd, unlike the ledger's page-cache durability: the WAL
		// holds the promises this replica made to its peers (the views
		// it signed), and a vote that outlives the machine while its
		// record does not is an equivocation waiting for a restart.
		// It is a few hundred bytes per vote — the cheap end of the
		// durability budget.
		wp := *walPath
		if wp == "" {
			wp = path + ".wal"
		}
		safetyWAL, err = wal.Open(wp)
		if err != nil {
			return err
		}
		defer func() { _ = safetyWAL.Close() }()
	}
	store := kvstore.New()
	node := core.NewNode(self, cfg, factory, shim, scheme, core.Options{
		Execute:     store.Apply,
		Ledger:      led,
		State:       store,
		Snapshots:   snaps,
		Bootstrap:   led != nil,
		WAL:         safetyWAL,
		TraceSpans:  *traceSpans,
		TraceEvents: 4 * *traceSpans,
		OnViolation: func(err error) {
			log.Printf("SAFETY VIOLATION: %v", err)
		},
	})

	var httpSrv *http.Server
	var api *httpapi.Server
	if *httpAddr != "" {
		api = httpapi.New(node, uint64(self), 30*time.Second)
		api.SetConditions(cond)
		if snaps != nil {
			api.SetSnapshots(snaps)
		}
		httpSrv = &http.Server{
			Addr:              *httpAddr,
			Handler:           api.Handler(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("http api: %v", err)
			}
		}()
	}

	node.Start()
	if api != nil {
		// Ready only now: the TCP transport is bound and bootstrap
		// replay (inside Start) has finished, so a supervisor polling
		// /readyz never races a replica that would still reject load.
		api.SetReady()
	}
	if replayed := node.Pipeline().Snapshot().ReplayedBlocks; replayed > 0 || node.Status().SnapshotHeight > 0 {
		st := node.Status()
		log.Printf("bootstrap: restored snapshot height %d, replayed %d ledger blocks (committed height %d)",
			st.SnapshotHeight, replayed, st.CommittedHeight)
	}
	log.Printf("replica %s running %s with %d peers (consensus %s, http %q)",
		self, cfg.Protocol, cfg.N, cfg.Addrs[self], *httpAddr)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Printf("shutting down on %v (second signal forces immediate exit)", s)
	go func() {
		s := <-sig
		log.Printf("forced exit on second %v", s)
		os.Exit(3)
	}()
	if httpSrv != nil {
		// Drain in-flight API requests instead of slamming their
		// connections — a benchmark driver's final POST /tx should
		// get its answer, not a reset. The deadline keeps a stuck
		// client from pinning the process; stragglers are cut off.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := httpSrv.Shutdown(ctx); err != nil {
			_ = httpSrv.Close()
		}
		cancel()
	}
	node.Stop()
	if err := shim.Close(); err != nil {
		return err
	}
	status := node.Status()
	log.Printf("final state: view %d, committed height %d", status.CurView, status.CommittedHeight)
	if v := node.Violations(); v > 0 {
		// A replica that witnessed safety violations must not exit 0:
		// supervisors treat the exit status as the verdict.
		return fmt.Errorf("%d safety violations observed", v)
	}
	return nil
}

// Command bamboo-bench regenerates the paper's evaluation (Section
// VI) on this machine: Table II, Figures 8-15, and the ablation
// studies, printing rows/series in the shape the paper reports. Every
// experiment runs through the declarative harness, so alongside the
// human-readable rows the structured results can be exported as JSON
// for regression tracking and plotting.
//
// Usage:
//
//	bamboo-bench [-scale 0.25] [-seed 1] [-json dir] table2 fig8 ... | all
//
// -scale 1 runs paper-like durations; smaller values shrink every
// warmup/measurement window proportionally. -json writes one
// BENCH_<experiment>.json file per selected experiment into the given
// directory (created if missing), each an array of harness Results.
// `all` runs everything in order.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"github.com/bamboo-bft/bamboo/internal/bench"
)

var experiments = []struct {
	name string
	desc string
	run  func(*bench.Runner) error
}{
	{"table2", "arrival rate vs throughput (HotStuff)", (*bench.Runner).RunTable2},
	{"fig8", "model vs implementation L-curves", (*bench.Runner).RunFigure8},
	{"fig9", "block sizes 100/400/800 (+OHS)", (*bench.Runner).RunFigure9},
	{"fig10", "payload sizes 0/128/1024", (*bench.Runner).RunFigure10},
	{"fig11", "added network delays 0/5/10ms", (*bench.Runner).RunFigure11},
	{"fig12", "scalability 4..64 nodes", (*bench.Runner).RunFigure12},
	{"fig13", "forking attack, 32 nodes", (*bench.Runner).RunFigure13},
	{"fig14", "silence attack, 32 nodes", (*bench.Runner).RunFigure14},
	{"fig15", "responsiveness timeline", (*bench.Runner).RunFigure15},
	{"ablation-crypto", "signature scheme cost", (*bench.Runner).RunAblationCrypto},
	{"ablation-routing", "vote routing designs", (*bench.Runner).RunAblationVoteBroadcast},
	{"ablation-responsive", "responsive vs Δ-wait", (*bench.Runner).RunAblationResponsiveness},
	{"ablation-batching", "client path / batching", (*bench.Runner).RunAblationBatching},
	{"ablation-fanout", "client fan-out designs", (*bench.Runner).RunAblationClientFanout},
	{"ablation-election", "leader-election designs", (*bench.Runner).RunAblationElection},
	{"pipeline-hotpath", "sync vs pipelined replica hot path", (*bench.Runner).RunPipelineHotPath},
}

func main() {
	var (
		scale   = flag.Float64("scale", 0.25, "duration scale; 1.0 = paper-like run lengths")
		seed    = flag.Int64("seed", 1, "workload and key seed")
		jsonDir = flag.String("json", "", "directory for BENCH_<experiment>.json result files")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bamboo-bench [flags] <experiment>... | all\n\nexperiments:\n")
		for _, e := range experiments {
			fmt.Fprintf(os.Stderr, "  %-20s %s\n", e.name, e.desc)
		}
		fmt.Fprintf(os.Stderr, "\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	selected := map[string]bool{}
	for _, a := range args {
		if a == "all" {
			for _, e := range experiments {
				selected[e.name] = true
			}
			continue
		}
		known := false
		for _, e := range experiments {
			if e.name == a {
				known = true
			}
		}
		if !known {
			log.SetFlags(0)
			log.Fatalf("bamboo-bench: unknown experiment %q (try -h)", a)
		}
		selected[a] = true
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			log.SetFlags(0)
			log.Fatalf("bamboo-bench: %v", err)
		}
	}

	runner := bench.NewRunner(os.Stdout, *scale, *seed)
	for _, e := range experiments {
		if !selected[e.name] {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.name, e.desc)
		start := time.Now()
		if err := e.run(runner); err != nil {
			log.SetFlags(0)
			log.Fatalf("bamboo-bench: %s: %v", e.name, err)
		}
		fmt.Printf("=== %s done in %v ===\n\n", e.name, time.Since(start).Round(time.Millisecond))
		results := runner.TakeResults()
		if *jsonDir == "" {
			continue
		}
		for _, res := range results {
			if res.Name == "" {
				res.Name = e.name
			}
		}
		path := filepath.Join(*jsonDir, fmt.Sprintf("BENCH_%s.json", e.name))
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			log.SetFlags(0)
			log.Fatalf("bamboo-bench: marshal %s: %v", e.name, err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			log.SetFlags(0)
			log.Fatalf("bamboo-bench: %v", err)
		}
		fmt.Printf("wrote %s (%d results)\n\n", path, len(results))
	}
}

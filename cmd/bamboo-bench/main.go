// Command bamboo-bench regenerates the paper's evaluation (Section
// VI) on this machine: Table II, Figures 8-15, and the ablation
// studies, printing rows/series in the shape the paper reports. Every
// experiment runs through the declarative harness, so alongside the
// human-readable rows the structured results can be exported as JSON
// for regression tracking and plotting.
//
// Usage:
//
//	bamboo-bench [-scale 0.25] [-seed 1] [-json dir] table2 fig8 ... | all
//	bamboo-bench -run scenario.json [-backend tcp] [-json dir]
//	bamboo-bench -wire [-json dir]
//
// -scale 1 runs paper-like durations; smaller values shrink every
// warmup/measurement window proportionally. -json writes one
// BENCH_<experiment>.json file per selected experiment into the given
// directory (created if missing), each an array of harness Results.
// `all` runs everything in order.
//
// -run executes one declared scenario from a JSON Experiment file
// (validated before anything starts) instead of the named experiments;
// -backend deploys over the in-process switch or real loopback TCP
// sockets, overriding the scenario's own backend — the same file must
// yield a consistent Result on either, which is exactly what the
// tcp-smoke CI job asserts.
//
// -wire runs the wire-codec micro-benchmarks (binary codec vs the
// retained gob reference, over the hot-path message mix) and, with
// -json, writes the structured report as BENCH_wire.json — the file
// the perf-smoke CI job gates on.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/bamboo-bft/bamboo/internal/bench"
	"github.com/bamboo-bft/bamboo/internal/codec/wirebench"
	"github.com/bamboo-bft/bamboo/internal/harness"
)

var experiments = []struct {
	name string
	desc string
	run  func(*bench.Runner) error
}{
	{"table2", "arrival rate vs throughput (HotStuff)", (*bench.Runner).RunTable2},
	{"fig8", "model vs implementation L-curves", (*bench.Runner).RunFigure8},
	{"fig9", "block sizes 100/400/800 (+OHS)", (*bench.Runner).RunFigure9},
	{"fig10", "payload sizes 0/128/1024", (*bench.Runner).RunFigure10},
	{"fig11", "added network delays 0/5/10ms", (*bench.Runner).RunFigure11},
	{"fig12", "scalability 4..64 nodes", (*bench.Runner).RunFigure12},
	{"fig13", "forking attack, 32 nodes", (*bench.Runner).RunFigure13},
	{"fig14", "silence attack, 32 nodes", (*bench.Runner).RunFigure14},
	{"fig15", "responsiveness timeline", (*bench.Runner).RunFigure15},
	{"ablation-crypto", "signature scheme cost", (*bench.Runner).RunAblationCrypto},
	{"ablation-routing", "vote routing designs", (*bench.Runner).RunAblationVoteBroadcast},
	{"ablation-responsive", "responsive vs Δ-wait", (*bench.Runner).RunAblationResponsiveness},
	{"ablation-batching", "client path / batching", (*bench.Runner).RunAblationBatching},
	{"ablation-fanout", "client fan-out designs", (*bench.Runner).RunAblationClientFanout},
	{"ablation-election", "leader-election designs", (*bench.Runner).RunAblationElection},
	{"pipeline-hotpath", "sync vs pipelined replica hot path", (*bench.Runner).RunPipelineHotPath},
	{"load", "open-loop rate ladder through saturation (tail latency, admission control)", (*bench.Runner).RunLoadLadder},
	{"stages", "per-stage commit-latency breakdown + chain quality (proposer shares, Gini)", (*bench.Runner).RunStages},
}

func main() {
	var (
		scale    = flag.Float64("scale", 0.25, "duration scale; 1.0 = paper-like run lengths")
		seed     = flag.Int64("seed", 1, "workload and key seed")
		jsonDir  = flag.String("json", "", "directory for BENCH_<experiment>.json result files")
		scenario = flag.String("run", "", "JSON scenario (Experiment) file to run instead of named experiments")
		backend  = flag.String("backend", "", fmt.Sprintf(
			"deployment backend: %q (in-process, default), %q (loopback sockets), or %q (one bamboo-server process per replica)",
			harness.BackendSwitch, harness.BackendTCP, harness.BackendFleet))
		wire = flag.Bool("wire", false, "run the wire-codec micro-benchmarks (binary codec vs gob reference)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bamboo-bench [flags] <experiment>... | all\n")
		fmt.Fprintf(os.Stderr, "       bamboo-bench -run scenario.json [-backend tcp]\n")
		fmt.Fprintf(os.Stderr, "       bamboo-bench -wire [-json dir]\n\nexperiments:\n")
		for _, e := range experiments {
			fmt.Fprintf(os.Stderr, "  %-20s %s\n", e.name, e.desc)
		}
		fmt.Fprintf(os.Stderr, "\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	log.SetFlags(0)
	if *backend != "" {
		// The harness keeps the single registered-backends list; the
		// flag accepts exactly what a scenario file may declare.
		known := false
		for _, b := range harness.Backends() {
			if *backend == b {
				known = true
				break
			}
		}
		if !known {
			log.Fatalf("bamboo-bench: unknown backend %q (want %s)",
				*backend, strings.Join(harness.Backends(), ", "))
		}
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			log.Fatalf("bamboo-bench: %v", err)
		}
	}
	if *wire {
		if *scenario != "" || len(args) > 0 {
			log.Fatalf("bamboo-bench: -wire runs alone; drop other experiments")
		}
		if err := runWire(*jsonDir); err != nil {
			log.Fatalf("bamboo-bench: %v", err)
		}
		return
	}
	if *scenario != "" {
		if len(args) > 0 {
			log.Fatalf("bamboo-bench: -run replaces named experiments; drop %q", args[0])
		}
		// A scenario file carries its own durations and seed; letting
		// -scale/-seed pass silently would measure under parameters
		// the user thinks they set.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "scale" || f.Name == "seed" {
				log.Fatalf("bamboo-bench: -%s does not apply to -run (the scenario file declares its own)", f.Name)
			}
		})
		if err := runScenario(*scenario, *backend, *jsonDir); err != nil {
			log.Fatalf("bamboo-bench: %v", err)
		}
		return
	}
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	selected := map[string]bool{}
	for _, a := range args {
		if a == "all" {
			for _, e := range experiments {
				selected[e.name] = true
			}
			continue
		}
		known := false
		for _, e := range experiments {
			if e.name == a {
				known = true
			}
		}
		if !known {
			log.Fatalf("bamboo-bench: unknown experiment %q (try -h)", a)
		}
		selected[a] = true
	}

	runner := bench.NewRunner(os.Stdout, *scale, *seed)
	runner.Backend = *backend
	for _, e := range experiments {
		if !selected[e.name] {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.name, e.desc)
		start := time.Now()
		if err := e.run(runner); err != nil {
			log.Fatalf("bamboo-bench: %s: %v", e.name, err)
		}
		fmt.Printf("=== %s done in %v ===\n\n", e.name, time.Since(start).Round(time.Millisecond))
		results := runner.TakeResults()
		if *jsonDir == "" {
			continue
		}
		for _, res := range results {
			if res.Name == "" {
				res.Name = e.name
			}
		}
		if err := writeResults(*jsonDir, e.name, results); err != nil {
			log.Fatalf("bamboo-bench: %v", err)
		}
	}
}

// runWire benchmarks the binary wire codec against the retained gob
// reference over the hot-path message mix and, with a -json dir,
// writes the report as BENCH_wire.json.
func runWire(jsonDir string) error {
	fmt.Printf("=== wire: binary codec vs gob reference ===\n")
	start := time.Now()
	rep := wirebench.Run(os.Stdout)
	s := rep.Summary
	fmt.Printf("=== wire done in %v ===\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("mix (encode+decode one of each fixture): wire %.0f ns, gob %.0f ns -> %.1fx faster\n",
		s.WireNsPerMix, s.GobNsPerMix, s.SpeedupX)
	fmt.Printf("mix allocations: wire %d, gob %d -> %.1fx fewer\n",
		s.WireAllocsPerMix, s.GobAllocsPerMix, s.AllocRatioX)
	if jsonDir == "" {
		return nil
	}
	path := filepath.Join(jsonDir, "BENCH_wire.json")
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal wire report: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d cases)\n", path, len(rep.Cases))
	return nil
}

// writeResults exports one experiment's structured results as
// BENCH_<name>.json in dir.
func writeResults(dir, name string, results []*harness.Result) error {
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", name))
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal %s: %w", name, err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d results)\n\n", path, len(results))
	return nil
}

// runScenario loads, validates, and executes one declared scenario
// file, printing a summary and exporting the Result (named
// BENCH_<scenario>-<backend>.json so runs of the same file over both
// backends sit side by side). The result file is written even when the
// run fails, so CI artifacts capture the Error field.
func runScenario(path, backend, jsonDir string) error {
	exp, err := harness.LoadExperiment(path)
	if err != nil {
		return err
	}
	if backend != "" {
		exp.Backend = backend
	}
	fmt.Printf("=== scenario %s (backend %s) ===\n", exp.Name,
		resolvedBackend(exp.Backend))
	start := time.Now()
	res, runErr := harness.Run(exp)
	fmt.Printf("=== scenario %s done in %v ===\n", exp.Name, time.Since(start).Round(time.Millisecond))
	for i, p := range res.Points {
		fmt.Printf("point %d: offered %.0f -> %.1f tx/s, p50 %v, p99 %v, %d blocks\n",
			i+1, p.Offered, p.Throughput, p.P50.Round(time.Microsecond), p.P99.Round(time.Microsecond), p.Blocks)
	}
	fmt.Printf("network: %d msgs, %d bytes, %d dropped", res.Network.Msgs, res.Network.Bytes, res.Network.Dropped)
	if res.Network.Dials > 0 {
		fmt.Printf(", %d dials (%d redials)", res.Network.Dials, res.Network.Redials)
	}
	fmt.Printf("\nconsistent=%v recovered=%v violations=%d\n", res.Consistent, res.Recovered, res.Violations)
	if jsonDir != "" {
		name := fmt.Sprintf("%s-%s", res.Name, res.Backend)
		if err := writeResults(jsonDir, name, []*harness.Result{res}); err != nil {
			return err
		}
	}
	return runErr
}

// resolvedBackend names the backend a blank declaration falls back to.
func resolvedBackend(b string) string {
	if b == "" {
		return harness.BackendSwitch
	}
	return b
}

// Command bamboo-model explores the Section V analytic performance
// model without running a cluster: it prints the model's latency
// curve, component breakdown, and saturation point for a given
// deployment shape.
//
// Usage:
//
//	bamboo-model -n 4 -bsize 400 -mu 400us -sigma 100us \
//	             -tcpu 30us -bandwidth 1.25e8 -psize 0 -protocol hotstuff
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/bamboo-bft/bamboo/internal/model"
)

func main() {
	var (
		n         = flag.Int("n", 4, "number of replicas")
		bsize     = flag.Int("bsize", 400, "transactions per block")
		mu        = flag.Duration("mu", 400*time.Microsecond, "mean link RTT µ")
		sigma     = flag.Duration("sigma", 100*time.Microsecond, "RTT standard deviation σ")
		tcpu      = flag.Duration("tcpu", 30*time.Microsecond, "per-operation CPU cost t_CPU")
		bandwidth = flag.Float64("bandwidth", 1.25e8, "NIC bandwidth bytes/s (0 disables)")
		psize     = flag.Int("psize", 0, "transaction payload bytes")
		proto     = flag.String("protocol", "hotstuff", "hotstuff | 2chainhs | streamlet")
		points    = flag.Int("points", 8, "curve points up to saturation")
	)
	flag.Parse()

	var p model.Protocol
	switch *proto {
	case "hotstuff":
		p = model.HotStuff
	case "2chainhs":
		p = model.TwoChainHotStuff
	case "streamlet":
		p = model.Streamlet
	default:
		log.SetFlags(0)
		log.Fatalf("bamboo-model: unknown protocol %q", *proto)
	}
	params := model.Params{
		N:          *n,
		BlockSize:  *bsize,
		Mu:         *mu,
		Sigma:      *sigma,
		TCPU:       *tcpu,
		BlockBytes: float64(*bsize) * float64(24+*psize),
		Bandwidth:  *bandwidth,
	}

	fmt.Printf("protocol      %s with %d replicas, %d tx/block, payload %d B\n", p, *n, *bsize, *psize)
	fmt.Printf("t_NIC         %v (2m/b)\n", params.TNIC())
	fmt.Printf("t_Q (Blom)    %v\n", params.QuorumWait())
	fmt.Printf("t_Q (MC)      %v (100k samples)\n", params.QuorumWaitMC(100000, 1))
	fmt.Printf("t_s           %v (3·t_CPU + 2·t_NIC + t_Q)\n", params.ServiceTime())
	fmt.Printf("t_commit      %v\n", params.CommitWait(p))
	fmt.Printf("saturation    %.0f Tx/s\n\n", params.SaturationRate())
	fmt.Printf("%-16s %-16s\n", "arrival (Tx/s)", "latency")
	for _, pt := range params.Curve(p, *points, 0.97) {
		fmt.Printf("%-16.0f %-16v\n", pt.Rate, pt.Latency.Round(time.Microsecond))
	}
}

// Command bamboo-client drives load against bamboo-server replicas
// through the RESTful API: the paper's closed-loop benchmark client
// (Table I "concurrency" and "runtime") in standalone form.
//
// Usage:
//
//	bamboo-client -servers http://10.0.0.1:8080,http://10.0.0.2:8080 \
//	              -concurrency 10 -runtime 30s -psize 128
//
// Each worker keeps one request in flight against a uniformly random
// server and the tool prints the throughput and latency distribution
// at the end.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/bamboo-bft/bamboo/internal/kvstore"
	"github.com/bamboo-bft/bamboo/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("bamboo-client: %v", err)
	}
}

func run() error {
	var (
		servers     = flag.String("servers", "http://127.0.0.1:8080", "comma-separated replica API URLs")
		concurrency = flag.Int("concurrency", 10, "closed-loop workers")
		runtime     = flag.Duration("runtime", 30*time.Second, "how long to run")
		psize       = flag.Int("psize", 0, "transaction payload bytes")
		seed        = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()
	urls := strings.Split(*servers, ",")
	if len(urls) == 0 || urls[0] == "" {
		return fmt.Errorf("no servers given")
	}

	var (
		lat       metrics.Latency
		committed metrics.Counter
		failed    metrics.Counter
		wg        sync.WaitGroup
	)
	stop := time.Now().Add(*runtime)
	client := &http.Client{Timeout: 30 * time.Second}
	body, err := json.Marshal(map[string][]byte{"command": kvstore.EncodeNoop(*psize)})
	if err != nil {
		return err
	}
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(workerSeed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(workerSeed))
			for time.Now().Before(stop) {
				url := urls[rng.Intn(len(urls))] + "/tx"
				start := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					failed.Add(1)
					time.Sleep(50 * time.Millisecond)
					continue
				}
				var out struct {
					Committed bool `json:"committed"`
				}
				decErr := json.NewDecoder(resp.Body).Decode(&out)
				_ = resp.Body.Close()
				if decErr != nil || !out.Committed {
					failed.Add(1)
					continue
				}
				lat.Record(time.Since(start))
				committed.Add(1)
			}
		}(*seed + int64(w))
	}
	wg.Wait()

	s := lat.Snapshot()
	elapsed := runtime.Seconds()
	fmt.Printf("committed: %d (%.1f Tx/s)\n", committed.Load(), float64(committed.Load())/elapsed)
	fmt.Printf("failed:    %d\n", failed.Load())
	fmt.Printf("latency:   mean %v  p50 %v  p95 %v  p99 %v  max %v\n",
		s.Mean, s.P50, s.P95, s.P99, s.Max)
	return nil
}
